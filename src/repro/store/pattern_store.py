"""The persistent, indexed pattern store.

:class:`PatternStore` is the durability layer of the mining system: the
closed crowds and closed gatherings produced by any driver — a one-shot
:class:`~repro.core.pipeline.GatheringMiner` run, the sharded batch driver,
or the streaming service's Lemma-4 evictions — land in one SQLite database
with spatial, temporal and per-object indexes (see
:mod:`repro.store.schema`).  Inserts are keyed by content fingerprint
(:func:`repro.core.codec.crowd_fingerprint` /
:func:`~repro.core.codec.gathering_fingerprint`), so appending the same
pattern twice — a shard boundary re-derivation, an at-least-once eviction
flush, a merge of two stores — is idempotent.

The store is the single source of truth the serving layer
(:class:`repro.serve.PatternQueryService`) reads from.
"""

from __future__ import annotations

import json
import sqlite3
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple, Union

from ..core.codec import (
    crowd_fingerprint,
    decode_crowd,
    decode_gathering,
    encode_crowd,
    encode_gathering,
    gathering_fingerprint,
)
from ..core.config import GatheringParameters
from ..core.crowd import Crowd
from ..core.gathering import Gathering
from .schema import SCHEMA_STATEMENTS, STORE_FORMAT, STORE_VERSION

__all__ = ["PatternRecord", "PatternStore", "RowKey"]

PathLike = Union[str, Path]

#: Spatial filter: ``(min_x, min_y, max_x, max_y)`` in data coordinates.
BBox = Tuple[float, float, float, float]

#: Keyset-pagination cursor: the ``(start_time, end_time, fingerprint)`` of
#: the last row already seen, in the store's canonical result order.
RowKey = Tuple[float, float, str]


@dataclass(frozen=True)
class PatternRecord:
    """One stored pattern row: indexed metadata plus the decodable payload.

    ``kind`` is ``"crowd"`` or ``"gathering"``.  :meth:`decode` rebuilds the
    full :class:`~repro.core.crowd.Crowd` /
    :class:`~repro.core.gathering.Gathering` object from the value-complete
    payload; :meth:`summary` gives the JSON-friendly metadata view the
    serving layer returns.
    """

    kind: str
    fingerprint: str
    start_time: float
    end_time: float
    lifetime: int
    bbox: BBox
    object_ids: Tuple[int, ...]
    payload: str

    def decode(self) -> Union[Crowd, Gathering]:
        """Rebuild the stored pattern object from its JSON payload."""
        data = json.loads(self.payload)
        if self.kind == "gathering":
            return decode_gathering(data)
        return decode_crowd(data)

    def summary(self) -> Dict[str, Any]:
        """JSON-friendly metadata view (no cluster payload)."""
        return {
            "kind": self.kind,
            "fingerprint": self.fingerprint,
            "start_time": self.start_time,
            "end_time": self.end_time,
            "lifetime": self.lifetime,
            "bbox": list(self.bbox),
            "object_ids": sorted(self.object_ids),
        }


def _crowd_bbox(crowd: Crowd) -> BBox:
    """Union bounding box of every cluster of a crowd."""
    boxes = [cluster.mbr for cluster in crowd.clusters]
    return (
        min(box.min_x for box in boxes),
        min(box.min_y for box in boxes),
        max(box.max_x for box in boxes),
        max(box.max_y for box in boxes),
    )


class PatternStore:
    """A versioned SQLite database of mined crowds and gatherings.

    Parameters
    ----------
    path:
        Database file (created if missing).  ``":memory:"`` gives an
        in-process store, handy in tests.
    readonly:
        Open an existing store without write access; creation, appends and
        merges then raise.
    busy_timeout_ms:
        SQLite ``busy_timeout`` applied to the connection.  Without it a
        reader colliding with a writer's exclusive moment (or two writers
        colliding) raises ``database is locked`` *immediately*; with it
        SQLite itself retries for up to this many milliseconds before
        giving up, which absorbs the short lock windows WAL mode still has
        (checkpoints, schema changes, non-WAL fallbacks).

    The store is safe to share across threads (the serving layer's HTTP
    handlers query it concurrently); writes are serialised by an internal
    lock and committed per call.
    """

    def __init__(
        self,
        path: PathLike = ":memory:",
        readonly: bool = False,
        busy_timeout_ms: int = 5000,
    ) -> None:
        self.path = str(path)
        self.readonly = readonly
        self.busy_timeout_ms = int(busy_timeout_ms)
        self._lock = threading.RLock()
        if readonly:
            if self.path != ":memory:" and not Path(self.path).exists():
                raise ValueError(f"pattern store {self.path!r} does not exist")
            uri = f"file:{self.path}?mode=ro"
            self._conn = sqlite3.connect(uri, uri=True, check_same_thread=False)
        else:
            self._conn = sqlite3.connect(self.path, check_same_thread=False)
            if self.path != ":memory:":
                # WAL lets the serving tier's read-connection pool query
                # concurrently while a writer appends: readers never block
                # the writer and vice versa.  (In-memory databases do not
                # support WAL; sqlite silently keeps journal_mode=memory.)
                self._conn.execute("PRAGMA journal_mode=WAL")
        # Always applied: sqlite3.connect's own timeout installs a busy
        # handler by default, so zero must explicitly disable it.
        self._conn.execute(f"PRAGMA busy_timeout={max(0, self.busy_timeout_ms)}")
        self._conn.row_factory = sqlite3.Row
        self._generation = 0
        self._initialise()

    # -- lifecycle ---------------------------------------------------------------
    def _initialise(self) -> None:
        """Create or validate the schema and the format/version meta rows."""
        with self._lock:
            tables = {
                row[0]
                for row in self._conn.execute(
                    "SELECT name FROM sqlite_master WHERE type = 'table'"
                )
            }
            if "meta" not in tables:
                if self.readonly:
                    raise ValueError(f"{self.path!r} is not a {STORE_FORMAT} database")
                for statement in SCHEMA_STATEMENTS:
                    self._conn.execute(statement)
                self._conn.execute(
                    "INSERT INTO meta (key, value) VALUES ('format', ?), ('version', ?)",
                    (STORE_FORMAT, str(STORE_VERSION)),
                )
                self._conn.commit()
                return
            meta = self._meta()
            if meta.get("format") != STORE_FORMAT:
                raise ValueError(f"{self.path!r} is not a {STORE_FORMAT} database")
            version = int(meta.get("version", "0"))
            if version != STORE_VERSION:
                raise ValueError(
                    f"unsupported store version {version} in {self.path!r} "
                    f"(this build reads version {STORE_VERSION})"
                )
            if not self.readonly:
                # Idempotent: (re)creates any index added by a same-version build.
                for statement in SCHEMA_STATEMENTS:
                    self._conn.execute(statement)
                self._conn.commit()

    def close(self) -> None:
        """Close the underlying connection; further calls raise."""
        with self._lock:
            self._conn.close()

    def __enter__(self) -> "PatternStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- metadata ----------------------------------------------------------------
    def _meta(self) -> Dict[str, str]:
        """The raw ``meta`` key/value table as a dict."""
        return {
            row["key"]: row["value"]
            for row in self._conn.execute("SELECT key, value FROM meta")
        }

    @property
    def generation(self) -> Tuple[int, int]:
        """Monotonic change marker: bumps whenever the store's content may have.

        Combines this handle's own write counter with SQLite's
        ``data_version`` pragma (which advances when *another* connection
        commits), so the serving layer's cache can key on it and never serve
        stale results after an append or merge.
        """
        with self._lock:
            row = self._conn.execute("PRAGMA data_version").fetchone()
        return (self._generation, int(row[0]))

    def params(self) -> Optional[GatheringParameters]:
        """The mining parameters recorded in the store, if any."""
        with self._lock:
            meta = self._meta()
        if "params" not in meta:
            return None
        return GatheringParameters(**json.loads(meta["params"]))

    def set_params(self, params: GatheringParameters, force: bool = False) -> None:
        """Record the mining parameters; reject a mismatch with stored ones.

        A store mixes pattern sets only if they were mined with identical
        thresholds — silently merging incompatible runs would corrupt the
        answer — so a second writer with different parameters raises unless
        ``force`` is given.
        """
        self._assert_writable()
        existing = self.params()
        if existing is not None and existing != params and not force:
            raise ValueError(
                f"store {self.path!r} was written with parameters {existing.as_dict()}; "
                f"refusing to mix in results mined with {params.as_dict()} "
                "(pass force=True to overwrite)"
            )
        with self._lock:
            self._conn.execute(
                "INSERT OR REPLACE INTO meta (key, value) VALUES ('params', ?)",
                (json.dumps(params.as_dict()),),
            )
            self._conn.commit()
            self._generation += 1

    def _assert_writable(self) -> None:
        """Raise on write attempts against a read-only handle."""
        if self.readonly:
            raise ValueError(f"pattern store {self.path!r} is read-only")

    # -- appends -----------------------------------------------------------------
    def add_crowds(self, crowds: Iterable[Crowd]) -> int:
        """Insert crowds (idempotent by fingerprint); return how many were new."""
        self._assert_writable()
        inserted = 0
        with self._lock:
            for crowd in crowds:
                fingerprint = crowd_fingerprint(crowd)
                bbox = _crowd_bbox(crowd)
                cursor = self._conn.execute(
                    "INSERT OR IGNORE INTO crowds (fingerprint, start_time, end_time,"
                    " lifetime, min_x, min_y, max_x, max_y, payload)"
                    " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
                    (
                        fingerprint,
                        crowd.start_time,
                        crowd.end_time,
                        crowd.lifetime,
                        bbox[0],
                        bbox[1],
                        bbox[2],
                        bbox[3],
                        json.dumps(encode_crowd(crowd)),
                    ),
                )
                if cursor.rowcount == 0:
                    continue
                inserted += 1
                crowd_id = cursor.lastrowid
                self._conn.executemany(
                    "INSERT INTO crowd_members (crowd_id, object_id, occurrences)"
                    " VALUES (?, ?, ?)",
                    [
                        (crowd_id, object_id, count)
                        for object_id, count in sorted(crowd.occurrences().items())
                    ],
                )
            self._conn.commit()
            if inserted:
                self._generation += 1
        return inserted

    def add_gatherings(self, gatherings: Iterable[Gathering]) -> int:
        """Insert gatherings (idempotent by fingerprint); return how many were new."""
        self._assert_writable()
        inserted = 0
        with self._lock:
            for gathering in gatherings:
                fingerprint = gathering_fingerprint(gathering)
                bbox = _crowd_bbox(gathering.crowd)
                cursor = self._conn.execute(
                    "INSERT OR IGNORE INTO gatherings (fingerprint, start_time,"
                    " end_time, lifetime, min_x, min_y, max_x, max_y, payload)"
                    " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
                    (
                        fingerprint,
                        gathering.start_time,
                        gathering.end_time,
                        gathering.lifetime,
                        bbox[0],
                        bbox[1],
                        bbox[2],
                        bbox[3],
                        json.dumps(encode_gathering(gathering)),
                    ),
                )
                if cursor.rowcount == 0:
                    continue
                inserted += 1
                gathering_id = cursor.lastrowid
                self._conn.executemany(
                    "INSERT INTO gathering_participators (gathering_id, object_id)"
                    " VALUES (?, ?)",
                    [(gathering_id, oid) for oid in sorted(gathering.participator_ids)],
                )
            self._conn.commit()
            if inserted:
                self._generation += 1
        return inserted

    def write_result(self, result) -> Dict[str, int]:
        """Persist a :class:`~repro.core.pipeline.MiningResult` (params included)."""
        self.set_params(result.params)
        return {
            "crowds": self.add_crowds(result.closed_crowds),
            "gatherings": self.add_gatherings(result.gatherings),
        }

    def merge_from(self, other: Union["PatternStore", PathLike]) -> Dict[str, int]:
        """Fold another store's patterns into this one (idempotent).

        ``other`` may be an open :class:`PatternStore` or a path.  Parameter
        compatibility is enforced the same way as :meth:`set_params`.
        """
        self._assert_writable()
        opened_here = not isinstance(other, PatternStore)
        source = PatternStore(other, readonly=True) if opened_here else other
        try:
            params = source.params()
            if params is not None:
                self.set_params(params)
            crowds = [record.decode() for record in source.query_crowds()]
            gatherings = [record.decode() for record in source.query_gatherings()]
        finally:
            if opened_here:
                source.close()
        return {
            "crowds": self.add_crowds(crowds),
            "gatherings": self.add_gatherings(gatherings),
        }

    # -- counts ------------------------------------------------------------------
    def crowd_count(self) -> int:
        """Number of stored closed crowds."""
        with self._lock:
            return int(self._conn.execute("SELECT COUNT(*) FROM crowds").fetchone()[0])

    def gathering_count(self) -> int:
        """Number of stored closed gatherings."""
        with self._lock:
            return int(
                self._conn.execute("SELECT COUNT(*) FROM gatherings").fetchone()[0]
            )

    def summary(self) -> Dict[str, Any]:
        """Headline view: counts, distinct objects, temporal and spatial extent."""
        with self._lock:
            crowds = self.crowd_count()
            gatherings = self.gathering_count()
            objects = int(
                self._conn.execute(
                    "SELECT COUNT(DISTINCT object_id) FROM crowd_members"
                ).fetchone()[0]
            )
            extent = self._conn.execute(
                "SELECT MIN(start_time), MAX(end_time), MIN(min_x), MIN(min_y),"
                " MAX(max_x), MAX(max_y) FROM crowds"
            ).fetchone()
        params = self.params()
        return {
            "format": STORE_FORMAT,
            "version": STORE_VERSION,
            "crowds": crowds,
            "gatherings": gatherings,
            "objects": objects,
            "time_span": [extent[0], extent[1]] if crowds else None,
            "bbox": list(extent[2:6]) if crowds else None,
            "params": params.as_dict() if params is not None else None,
        }

    # -- queries -----------------------------------------------------------------
    def _query(
        self,
        table: str,
        member_table: str,
        member_fk: str,
        bbox: Optional[BBox],
        time_from: Optional[float],
        time_to: Optional[float],
        object_id: Optional[int],
        min_lifetime: Optional[int],
        limit: Optional[int],
        after: Optional[RowKey] = None,
    ) -> List[PatternRecord]:
        """Shared filtered SELECT over one pattern table."""
        clauses: List[str] = []
        values: List[Any] = []
        if after is not None:
            if len(after) != 3:
                raise ValueError(
                    f"after must be (start_time, end_time, fingerprint), got {after!r}"
                )
            # Keyset pagination: the result order (start_time, end_time,
            # fingerprint) is a total order (fingerprints are unique), so
            # resuming strictly after a row never duplicates or skips one.
            clauses.append("(p.start_time, p.end_time, p.fingerprint) > (?, ?, ?)")
            values.extend([float(after[0]), float(after[1]), str(after[2])])
        if bbox is not None:
            min_x, min_y, max_x, max_y = bbox
            if min_x > max_x or min_y > max_y:
                raise ValueError(f"degenerate bbox {bbox!r} (min corner beyond max)")
            clauses.append("p.max_x >= ? AND p.min_x <= ? AND p.max_y >= ? AND p.min_y <= ?")
            values.extend([min_x, max_x, min_y, max_y])
        if time_from is not None:
            clauses.append("p.end_time >= ?")
            values.append(time_from)
        if time_to is not None:
            clauses.append("p.start_time <= ?")
            values.append(time_to)
        if min_lifetime is not None:
            clauses.append("p.lifetime >= ?")
            values.append(min_lifetime)
        if object_id is not None:
            clauses.append(
                f"p.id IN (SELECT {member_fk} FROM {member_table} WHERE object_id = ?)"
            )
            values.append(object_id)
        sql = f"SELECT p.* FROM {table} p"
        if clauses:
            sql += " WHERE " + " AND ".join(clauses)
        sql += " ORDER BY p.start_time, p.end_time, p.fingerprint"
        if limit is not None:
            if limit < 0:
                raise ValueError("limit must be non-negative")
            sql += " LIMIT ?"
            values.append(limit)

        kind = "crowd" if table == "crowds" else "gathering"
        with self._lock:
            rows = self._conn.execute(sql, values).fetchall()
            # One batched member fetch for all matched rows (not one SELECT
            # per row): chunked to stay under SQLite's bound-variable limit.
            members_by_row: Dict[int, List[int]] = {row["id"]: [] for row in rows}
            ids = list(members_by_row)
            for start in range(0, len(ids), 500):
                chunk = ids[start : start + 500]
                placeholders = ",".join("?" * len(chunk))
                for member in self._conn.execute(
                    f"SELECT {member_fk} AS row_id, object_id FROM {member_table}"
                    f" WHERE {member_fk} IN ({placeholders}) ORDER BY object_id",
                    chunk,
                ):
                    members_by_row[member["row_id"]].append(member["object_id"])
        return [
            PatternRecord(
                kind=kind,
                fingerprint=row["fingerprint"],
                start_time=row["start_time"],
                end_time=row["end_time"],
                lifetime=row["lifetime"],
                bbox=(row["min_x"], row["min_y"], row["max_x"], row["max_y"]),
                object_ids=tuple(members_by_row[row["id"]]),
                payload=row["payload"],
            )
            for row in rows
        ]

    def query_crowds(
        self,
        bbox: Optional[BBox] = None,
        time_from: Optional[float] = None,
        time_to: Optional[float] = None,
        object_id: Optional[int] = None,
        min_lifetime: Optional[int] = None,
        limit: Optional[int] = None,
        after: Optional[RowKey] = None,
    ) -> List[PatternRecord]:
        """Crowds overlapping the given region / time window / object filters.

        All filters are optional and conjunctive.  ``bbox`` matches crowds
        whose bounding box intersects it; ``time_from``/``time_to`` match
        crowds whose ``[start_time, end_time]`` interval overlaps the window;
        ``object_id`` matches crowds the object is a member of;
        ``min_lifetime`` is the durability threshold.  ``after`` resumes the
        canonical ``(start_time, end_time, fingerprint)`` order strictly
        after that row key (keyset pagination; pair it with ``limit``).
        """
        return self._query(
            "crowds", "crowd_members", "crowd_id",
            bbox, time_from, time_to, object_id, min_lifetime, limit,
            after=after,
        )

    def query_gatherings(
        self,
        bbox: Optional[BBox] = None,
        time_from: Optional[float] = None,
        time_to: Optional[float] = None,
        object_id: Optional[int] = None,
        min_lifetime: Optional[int] = None,
        limit: Optional[int] = None,
        after: Optional[RowKey] = None,
    ) -> List[PatternRecord]:
        """Gatherings overlapping the given filters (see :meth:`query_crowds`).

        ``object_id`` matches against the gathering's *participator* set —
        the durable members, not every object that ever touched a cluster.
        """
        return self._query(
            "gatherings", "gathering_participators", "gathering_id",
            bbox, time_from, time_to, object_id, min_lifetime, limit,
            after=after,
        )

    # -- full decodes ------------------------------------------------------------
    def crowds(self) -> Iterator[Crowd]:
        """Decode every stored crowd, ordered by (start_time, end_time)."""
        for record in self.query_crowds():
            yield record.decode()

    def gatherings(self) -> Iterator[Gathering]:
        """Decode every stored gathering, ordered by (start_time, end_time)."""
        for record in self.query_gatherings():
            yield record.decode()
