"""Versioned SQLite schema of the persistent pattern store.

The store is a single SQLite database holding the end product of mining —
closed crowds and closed gatherings — in a shape that supports both exact
reconstruction and indexed querying:

* ``meta`` — format tag, schema version and the mining parameters, so a
  store is self-describing and version-checked on open;
* ``crowds`` / ``gatherings`` — one row per pattern with its temporal
  extent, lifetime, spatial bounding box and a value-complete JSON payload
  (the :mod:`repro.core.codec` encoding) from which the original
  :class:`~repro.core.crowd.Crowd` / :class:`~repro.core.gathering.Gathering`
  object is rebuilt.  ``fingerprint`` is the content hash of the pattern's
  identity; a UNIQUE constraint on it gives the store its append/merge
  semantics — shard outputs and streaming evictions can all be inserted
  blindly and land exactly once;
* ``crowd_members`` / ``gathering_participators`` — normalized per-object
  rows enabling "which gatherings did object o take part in?" lookups
  without decoding payloads.

Indexes cover the query planes of the serving layer: temporal
(``start_time`` / ``end_time``), spatial (bounding-box columns) and
per-object (member / participator object ids).
"""

from __future__ import annotations

__all__ = ["STORE_FORMAT", "STORE_VERSION", "SCHEMA_STATEMENTS"]

#: Format tag stored in ``meta`` and checked when a store is opened.
STORE_FORMAT = "repro-pattern-store"

#: Schema version; bumped on any incompatible table change.
STORE_VERSION = 1

#: DDL executed (idempotently) when a store is created or opened for write.
SCHEMA_STATEMENTS = (
    """
    CREATE TABLE IF NOT EXISTS meta (
        key   TEXT PRIMARY KEY,
        value TEXT NOT NULL
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS crowds (
        id          INTEGER PRIMARY KEY,
        fingerprint TEXT NOT NULL UNIQUE,
        start_time  REAL NOT NULL,
        end_time    REAL NOT NULL,
        lifetime    INTEGER NOT NULL,
        min_x       REAL NOT NULL,
        min_y       REAL NOT NULL,
        max_x       REAL NOT NULL,
        max_y       REAL NOT NULL,
        payload     TEXT NOT NULL
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS crowd_members (
        crowd_id    INTEGER NOT NULL REFERENCES crowds(id) ON DELETE CASCADE,
        object_id   INTEGER NOT NULL,
        occurrences INTEGER NOT NULL,
        PRIMARY KEY (crowd_id, object_id)
    ) WITHOUT ROWID
    """,
    """
    CREATE TABLE IF NOT EXISTS gatherings (
        id          INTEGER PRIMARY KEY,
        fingerprint TEXT NOT NULL UNIQUE,
        start_time  REAL NOT NULL,
        end_time    REAL NOT NULL,
        lifetime    INTEGER NOT NULL,
        min_x       REAL NOT NULL,
        min_y       REAL NOT NULL,
        max_x       REAL NOT NULL,
        max_y       REAL NOT NULL,
        payload     TEXT NOT NULL
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS gathering_participators (
        gathering_id INTEGER NOT NULL REFERENCES gatherings(id) ON DELETE CASCADE,
        object_id    INTEGER NOT NULL,
        PRIMARY KEY (gathering_id, object_id)
    ) WITHOUT ROWID
    """,
    "CREATE INDEX IF NOT EXISTS idx_crowds_time ON crowds (start_time, end_time)",
    "CREATE INDEX IF NOT EXISTS idx_crowds_bbox ON crowds (min_x, max_x, min_y, max_y)",
    "CREATE INDEX IF NOT EXISTS idx_gatherings_time ON gatherings (start_time, end_time)",
    "CREATE INDEX IF NOT EXISTS idx_gatherings_bbox"
    " ON gatherings (min_x, max_x, min_y, max_y)",
    "CREATE INDEX IF NOT EXISTS idx_crowd_members_object ON crowd_members (object_id)",
    "CREATE INDEX IF NOT EXISTS idx_gathering_participators_object"
    " ON gathering_participators (object_id)",
)
