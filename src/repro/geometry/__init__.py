"""Geometric primitives: points, rectangles, Hausdorff distance, simplification."""

from .point import (
    Point,
    array_to_points,
    bounding_coordinates,
    centroid,
    euclidean,
    points_to_array,
    squared_euclidean,
)
from .mbr import MBR, mbr_of_points, min_distance_rects, side_distance
from .hausdorff import directed_hausdorff, hausdorff, hausdorff_naive, hausdorff_within
from .simplify import douglas_peucker, perpendicular_distance, simplify_indices
from .interpolation import interpolate_position, resample_track

__all__ = [
    "Point",
    "array_to_points",
    "bounding_coordinates",
    "centroid",
    "euclidean",
    "points_to_array",
    "squared_euclidean",
    "MBR",
    "mbr_of_points",
    "min_distance_rects",
    "side_distance",
    "directed_hausdorff",
    "hausdorff",
    "hausdorff_naive",
    "hausdorff_within",
    "douglas_peucker",
    "perpendicular_distance",
    "simplify_indices",
    "interpolate_position",
    "resample_track",
]
