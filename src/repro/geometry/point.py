"""Planar point primitives used throughout the library.

The paper works with timestamped locations in the Euclidean plane.  All
higher-level structures (snapshot clusters, crowds, gatherings) are ultimately
sets or sequences of these points, so the primitives here are intentionally
small, immutable, and cheap to hash.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence, Tuple

import numpy as np

__all__ = [
    "Point",
    "euclidean",
    "squared_euclidean",
    "points_to_array",
    "array_to_points",
    "centroid",
    "bounding_coordinates",
]


@dataclass(frozen=True, order=True)
class Point:
    """An immutable 2-D point.

    Attributes
    ----------
    x, y:
        Planar coordinates.  The library is agnostic about the unit; the
        paper (and our synthetic generator) uses metres in a projected plane.
    """

    x: float
    y: float

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to ``other``."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def squared_distance_to(self, other: "Point") -> float:
        """Squared Euclidean distance to ``other`` (avoids the sqrt)."""
        dx = self.x - other.x
        dy = self.y - other.y
        return dx * dx + dy * dy

    def translate(self, dx: float, dy: float) -> "Point":
        """Return a new point shifted by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def as_tuple(self) -> Tuple[float, float]:
        """Return ``(x, y)`` as a plain tuple."""
        return (self.x, self.y)

    def __iter__(self):
        yield self.x
        yield self.y


def euclidean(p: Sequence[float], q: Sequence[float]) -> float:
    """Euclidean distance between two ``(x, y)`` sequences."""
    return math.hypot(p[0] - q[0], p[1] - q[1])


def squared_euclidean(p: Sequence[float], q: Sequence[float]) -> float:
    """Squared Euclidean distance between two ``(x, y)`` sequences."""
    dx = p[0] - q[0]
    dy = p[1] - q[1]
    return dx * dx + dy * dy


def points_to_array(points: Iterable[Point]) -> np.ndarray:
    """Convert an iterable of :class:`Point` to an ``(n, 2)`` float array."""
    pts = list(points)
    if not pts:
        return np.empty((0, 2), dtype=float)
    return np.array([(p.x, p.y) for p in pts], dtype=float)


def array_to_points(array: np.ndarray) -> list:
    """Convert an ``(n, 2)`` array back to a list of :class:`Point`."""
    return [Point(float(x), float(y)) for x, y in np.asarray(array, dtype=float)]


def centroid(points: Sequence[Point]) -> Point:
    """Arithmetic mean of a non-empty point sequence."""
    if not points:
        raise ValueError("centroid of an empty point set is undefined")
    sx = sum(p.x for p in points)
    sy = sum(p.y for p in points)
    n = len(points)
    return Point(sx / n, sy / n)


def bounding_coordinates(points: Sequence[Point]) -> Tuple[float, float, float, float]:
    """Return ``(min_x, min_y, max_x, max_y)`` of a non-empty point sequence."""
    if not points:
        raise ValueError("bounding box of an empty point set is undefined")
    xs = [p.x for p in points]
    ys = [p.y for p in points]
    return (min(xs), min(ys), max(xs), max(ys))
