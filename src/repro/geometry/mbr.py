"""Minimum bounding rectangles and the distance bounds of Lemmas 2 and 3.

The paper prunes candidate snapshot clusters without computing the exact
Hausdorff distance by reasoning about their minimum bounding rectangles:

* Lemma 2: ``d_min(M(c_i), M(c_j)) <= d_H(c_i, c_j)`` — the familiar
  rectangle-to-rectangle minimum distance is a (loose) lower bound.
* Lemma 3: ``d_side(M(c_i), M(c_j)) <= d_H(c_i, c_j)`` where ``d_side`` takes
  the maximum over the four sides of ``M(c_i)`` of the minimum distance from
  that side to ``M(c_j)`` — a tighter lower bound used by the improved R-tree
  pruning (IR).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List

from .point import Point

__all__ = ["MBR", "mbr_of_points", "min_distance_rects", "side_distance"]


@dataclass(frozen=True)
class MBR:
    """An axis-aligned minimum bounding rectangle."""

    min_x: float
    min_y: float
    max_x: float
    max_y: float

    def __post_init__(self) -> None:
        if self.min_x > self.max_x or self.min_y > self.max_y:
            raise ValueError(
                f"invalid MBR: ({self.min_x}, {self.min_y}) > ({self.max_x}, {self.max_y})"
            )

    # -- basic geometry -----------------------------------------------------
    @property
    def width(self) -> float:
        return self.max_x - self.min_x

    @property
    def height(self) -> float:
        return self.max_y - self.min_y

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def center(self) -> Point:
        return Point((self.min_x + self.max_x) / 2.0, (self.min_y + self.max_y) / 2.0)

    @property
    def perimeter(self) -> float:
        return 2.0 * (self.width + self.height)

    def contains_point(self, p: Point) -> bool:
        return self.min_x <= p.x <= self.max_x and self.min_y <= p.y <= self.max_y

    def contains(self, other: "MBR") -> bool:
        return (
            self.min_x <= other.min_x
            and self.min_y <= other.min_y
            and self.max_x >= other.max_x
            and self.max_y >= other.max_y
        )

    def intersects(self, other: "MBR") -> bool:
        return not (
            self.max_x < other.min_x
            or other.max_x < self.min_x
            or self.max_y < other.min_y
            or other.max_y < self.min_y
        )

    def union(self, other: "MBR") -> "MBR":
        return MBR(
            min(self.min_x, other.min_x),
            min(self.min_y, other.min_y),
            max(self.max_x, other.max_x),
            max(self.max_y, other.max_y),
        )

    def enlargement(self, other: "MBR") -> float:
        """Area increase if ``other`` were merged into this rectangle."""
        return self.union(other).area - self.area

    def expand(self, margin: float) -> "MBR":
        """Return this rectangle enlarged by ``margin`` on every side."""
        return MBR(
            self.min_x - margin,
            self.min_y - margin,
            self.max_x + margin,
            self.max_y + margin,
        )

    # -- distance bounds ----------------------------------------------------
    def min_distance_to(self, other: "MBR") -> float:
        """Minimum distance between two rectangles (Lemma 2 lower bound)."""
        return min_distance_rects(self, other)

    def side_distance_to(self, other: "MBR") -> float:
        """The ``d_side`` lower bound of Lemma 3.

        The maximum over the four sides of ``self`` of the minimum distance
        between that side (treated as a degenerate rectangle) and ``other``.
        """
        return side_distance(self, other)

    def sides(self) -> List["MBR"]:
        """The four sides of the rectangle as degenerate rectangles."""
        return [
            MBR(self.min_x, self.min_y, self.max_x, self.min_y),  # bottom
            MBR(self.min_x, self.max_y, self.max_x, self.max_y),  # top
            MBR(self.min_x, self.min_y, self.min_x, self.max_y),  # left
            MBR(self.max_x, self.min_y, self.max_x, self.max_y),  # right
        ]

    def expanded_side_windows(self, margin: float) -> List["MBR"]:
        """Each side enlarged by ``margin``, used by the IR window query.

        A cluster can only be within Hausdorff distance ``margin`` of this
        rectangle's cluster if its MBR intersects *all four* of these
        windows (the contrapositive of Lemma 3).
        """
        return [side.expand(margin) for side in self.sides()]


def mbr_of_points(points: Iterable[Point]) -> MBR:
    """Minimum bounding rectangle of a non-empty collection of points."""
    pts = list(points)
    if not pts:
        raise ValueError("MBR of an empty point set is undefined")
    xs = [p.x for p in pts]
    ys = [p.y for p in pts]
    return MBR(min(xs), min(ys), max(xs), max(ys))


def _interval_distance(lo1: float, hi1: float, lo2: float, hi2: float) -> float:
    """Distance between two 1-D intervals (0 if they overlap)."""
    if hi1 < lo2:
        return lo2 - hi1
    if hi2 < lo1:
        return lo1 - hi2
    return 0.0


def min_distance_rects(a: MBR, b: MBR) -> float:
    """Minimum distance between two axis-aligned rectangles."""
    dx = _interval_distance(a.min_x, a.max_x, b.min_x, b.max_x)
    dy = _interval_distance(a.min_y, a.max_y, b.min_y, b.max_y)
    return math.hypot(dx, dy)


def side_distance(a: MBR, b: MBR) -> float:
    """The ``d_side`` bound of Lemma 3: max over sides of ``a`` of d_min(side, b)."""
    return max(min_distance_rects(side, b) for side in a.sides())
