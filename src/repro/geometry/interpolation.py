"""Temporal linear interpolation of trajectory samples.

The paper assumes trajectories with heterogeneous sampling rates and creates
"virtual points" by linear interpolation whenever an object has no sample at
a required time instant (Section II).  These helpers implement that model.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import List, Optional, Sequence, Tuple

from .point import Point

__all__ = ["interpolate_position", "resample_track"]

TimedPoint = Tuple[float, Point]


def interpolate_position(
    samples: Sequence[TimedPoint], t: float, max_gap: Optional[float] = None
) -> Optional[Point]:
    """Location of a trajectory at time ``t`` via linear interpolation.

    Parameters
    ----------
    samples:
        Chronologically sorted ``(time, Point)`` pairs.
    t:
        The query time.
    max_gap:
        If given, interpolation between two samples more than ``max_gap``
        apart returns ``None`` (the object is considered unobserved), which
        avoids inventing positions across long signal losses.

    Returns
    -------
    The interpolated :class:`Point`, or ``None`` when ``t`` lies outside the
    trajectory's lifespan or inside a gap longer than ``max_gap``.
    """
    if not samples:
        return None
    times = [s[0] for s in samples]
    if t < times[0] or t > times[-1]:
        return None
    idx = bisect_left(times, t)
    if idx < len(times) and times[idx] == t:
        return samples[idx][1]
    # t strictly between times[idx - 1] and times[idx]
    t0, p0 = samples[idx - 1]
    t1, p1 = samples[idx]
    if max_gap is not None and (t1 - t0) > max_gap:
        return None
    if t1 == t0:
        return p0
    ratio = (t - t0) / (t1 - t0)
    return Point(p0.x + ratio * (p1.x - p0.x), p0.y + ratio * (p1.y - p0.y))


def resample_track(
    samples: Sequence[TimedPoint],
    timestamps: Sequence[float],
    max_gap: Optional[float] = None,
) -> List[Tuple[float, Optional[Point]]]:
    """Resample a trajectory at the given timestamps.

    Returns a list of ``(t, point_or_None)`` so the caller can distinguish
    "observed/interpolated" from "unobserved".
    """
    return [(t, interpolate_position(samples, t, max_gap=max_gap)) for t in timestamps]
