"""Douglas-Peucker polyline simplification.

The snapshot-clustering phase can be accelerated (as in the CuTS convoy
framework the paper references) by simplifying each trajectory before
line-segment pre-clustering.  This module provides an iterative
Douglas-Peucker implementation that works on both raw coordinate sequences
and timestamped trajectories.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

__all__ = ["perpendicular_distance", "douglas_peucker", "simplify_indices"]


def perpendicular_distance(
    point: Sequence[float], start: Sequence[float], end: Sequence[float]
) -> float:
    """Distance from ``point`` to the segment ``start``–``end``.

    When the segment degenerates to a single point the plain Euclidean
    distance is returned.
    """
    px, py = point[0], point[1]
    sx, sy = start[0], start[1]
    ex, ey = end[0], end[1]
    dx = ex - sx
    dy = ey - sy
    seg_len_sq = dx * dx + dy * dy
    if seg_len_sq == 0.0:
        return math.hypot(px - sx, py - sy)
    t = ((px - sx) * dx + (py - sy) * dy) / seg_len_sq
    t = max(0.0, min(1.0, t))
    nearest_x = sx + t * dx
    nearest_y = sy + t * dy
    return math.hypot(px - nearest_x, py - nearest_y)


def simplify_indices(points: Sequence[Sequence[float]], tolerance: float) -> List[int]:
    """Return the indices of the points kept by Douglas-Peucker.

    An iterative (stack-based) formulation is used so that very long
    trajectories cannot overflow the recursion limit.
    """
    if tolerance < 0:
        raise ValueError("tolerance must be non-negative")
    n = len(points)
    if n <= 2:
        return list(range(n))

    keep = [False] * n
    keep[0] = keep[n - 1] = True
    stack: List[Tuple[int, int]] = [(0, n - 1)]
    while stack:
        first, last = stack.pop()
        max_dist = -1.0
        max_index = first
        for i in range(first + 1, last):
            dist = perpendicular_distance(points[i], points[first], points[last])
            if dist > max_dist:
                max_dist = dist
                max_index = i
        if max_dist > tolerance:
            keep[max_index] = True
            stack.append((first, max_index))
            stack.append((max_index, last))
    return [i for i, flag in enumerate(keep) if flag]


def douglas_peucker(
    points: Sequence[Sequence[float]], tolerance: float
) -> List[Sequence[float]]:
    """Simplify a polyline, returning the retained points in order."""
    return [points[i] for i in simplify_indices(points, tolerance)]
