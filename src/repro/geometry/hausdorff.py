"""Hausdorff distance between point sets.

The crowd definition (Definition 2) bounds the Hausdorff distance between
consecutive snapshot clusters by the variation threshold ``delta``.  Because
crowd discovery evaluates an enormous number of cluster pairs, three
implementations are provided:

* :func:`hausdorff_naive` — the textbook double loop, used as the reference
  in tests and ablations.
* :func:`hausdorff` — numpy-vectorised exact distance.
* :func:`hausdorff_within` — thresholded decision procedure with early
  abandoning; it answers *"is d_H(P, Q) <= delta?"* without always computing
  the exact value, which is all Algorithm 1 needs.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from ..engine.kernels import directed_within as _directed_within_kernel
from .point import Point, points_to_array

__all__ = [
    "directed_hausdorff",
    "hausdorff",
    "hausdorff_naive",
    "hausdorff_within",
]


def _as_array(points) -> np.ndarray:
    if isinstance(points, np.ndarray):
        arr = np.asarray(points, dtype=float)
        if arr.ndim != 2 or arr.shape[1] != 2:
            raise ValueError("point array must have shape (n, 2)")
        return arr
    pts = list(points)
    if pts and isinstance(pts[0], Point):
        return points_to_array(pts)
    return np.asarray(pts, dtype=float).reshape(-1, 2)


def directed_hausdorff(p, q) -> float:
    """Directed Hausdorff distance ``h(P, Q) = max_{p in P} min_{q in Q} d(p, q)``."""
    parr = _as_array(p)
    qarr = _as_array(q)
    if parr.size == 0 or qarr.size == 0:
        raise ValueError("Hausdorff distance of an empty point set is undefined")
    diffs = parr[:, None, :] - qarr[None, :, :]
    dists = np.sqrt(np.einsum("ijk,ijk->ij", diffs, diffs))
    return float(dists.min(axis=1).max())


def hausdorff(p, q) -> float:
    """Exact (symmetric) Hausdorff distance between two point sets."""
    parr = _as_array(p)
    qarr = _as_array(q)
    if parr.size == 0 or qarr.size == 0:
        raise ValueError("Hausdorff distance of an empty point set is undefined")
    diffs = parr[:, None, :] - qarr[None, :, :]
    dists = np.sqrt(np.einsum("ijk,ijk->ij", diffs, diffs))
    forward = dists.min(axis=1).max()
    backward = dists.min(axis=0).max()
    return float(max(forward, backward))


def hausdorff_naive(p: Sequence[Point], q: Sequence[Point]) -> float:
    """Pure-Python reference implementation (quadratic double loop)."""
    p = list(p)
    q = list(q)
    if not p or not q:
        raise ValueError("Hausdorff distance of an empty point set is undefined")

    def directed(src, dst):
        worst = 0.0
        for a in src:
            best = math.inf
            for b in dst:
                d = math.hypot(a[0] - b[0], a[1] - b[1])
                if d < best:
                    best = d
                    if best == 0.0:
                        break
            if best > worst:
                worst = best
        return worst

    def _coords(pts):
        return [(pt.x, pt.y) if isinstance(pt, Point) else (pt[0], pt[1]) for pt in pts]

    pc = _coords(p)
    qc = _coords(q)
    return max(directed(pc, qc), directed(qc, pc))


def hausdorff_within(p, q, threshold: float) -> bool:
    """Decide whether ``d_H(P, Q) <= threshold`` with early abandoning.

    The directed distances are evaluated block-wise by the vectorized
    :func:`repro.engine.kernels.directed_within` kernel; a block containing a
    point whose nearest neighbour in the other set is farther than
    ``threshold`` answers ``False`` and abandons the remaining blocks.
    """
    if threshold < 0:
        raise ValueError("threshold must be non-negative")
    parr = _as_array(p)
    qarr = _as_array(q)
    if parr.size == 0 or qarr.size == 0:
        raise ValueError("Hausdorff distance of an empty point set is undefined")
    limit_sq = threshold * threshold
    return _directed_within_kernel(parr, qarr, limit_sq) and _directed_within_kernel(
        qarr, parr, limit_sq
    )
