"""Streaming gathering discovery: a durable service over raw point feeds.

The package wraps the incremental miners of Section III-C into a
production-shaped lifecycle — windowed ingestion, bounded-memory eviction
(Lemma 4), versioned checkpoint/restore and a backpressure-aware replay
driver.  See :mod:`repro.stream.service` for the semantics and
``docs/streaming.md`` for the operator-level guide.
"""

from .checkpoint import CHECKPOINT_FORMAT, CHECKPOINT_VERSION, CheckpointCorruptionError
from .driver import ReplayDriver, ReplayReport
from .service import (
    EVICTION_POLICIES,
    LATE_POLICIES,
    StreamingGatheringService,
    StreamPoint,
    StreamResult,
    StreamStats,
)

__all__ = [
    "CHECKPOINT_FORMAT",
    "CHECKPOINT_VERSION",
    "CheckpointCorruptionError",
    "EVICTION_POLICIES",
    "LATE_POLICIES",
    "ReplayDriver",
    "ReplayReport",
    "StreamingGatheringService",
    "StreamPoint",
    "StreamResult",
    "StreamStats",
]
