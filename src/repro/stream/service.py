"""Durable streaming front-end for the incremental miners (Section III-C).

:class:`StreamingGatheringService` turns the in-process incremental
machinery — :class:`~repro.core.incremental.IncrementalCrowdMiner` (crowd
extension, Lemma 4) and
:class:`~repro.core.pipeline.IncrementalGatheringMiner` (gathering reuse,
Theorem 2) — into a long-running service over a raw point feed:

* **Windowing** — arriving fixes are bucketed onto the discretised time grid
  (granularity ``params.time_step``) in windows of ``window`` snapshots.  A
  window closes once the feed has advanced ``slack`` snapshots past its end;
  its snapshots are clustered through the registry-resolved engine backend
  (:class:`~repro.engine.registry.ExecutionConfig`) and folded into the
  incremental miners, exactly as one batch of Section III-C.
* **Late arrivals** — points behind the already-folded frontier cannot be
  mined without violating the incremental contract; per
  :attr:`late_policy` they are dropped, held for audit, or rejected.
* **Bounded memory** — by Lemma 4 only cluster sequences ending at the
  frontier timestamp can ever be extended.  After every window the service
  freezes everything else (:meth:`IncrementalGatheringMiner.freeze_before`)
  into an append-only results store, so live mining state stays proportional
  to the frontier, not to stream length.
* **Checkpoint / restore** — :meth:`checkpoint` serialises the full service
  state to a versioned on-disk format and :meth:`restore` resumes from it,
  producing results identical to an uninterrupted run (see
  :mod:`repro.stream.checkpoint`).

Exact equivalence with a one-shot :class:`~repro.core.pipeline.GatheringMiner`
run holds for feeds that sample every object at every grid timestamp it is
present (e.g. the fleet simulator's output).  For sparse feeds the service
carries each object's last folded fix across window boundaries so left-edge
interpolation matches the batch pipeline; right-edge interpolation against
samples that have not arrived yet is impossible in a streaming setting and
is the one documented divergence.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple, Union

from ..core.config import GatheringParameters
from ..core.crowd import Crowd
from ..core.gathering import Gathering, dedupe_gatherings
from ..core.pipeline import GatheringMiner, IncrementalGatheringMiner
from ..engine.registry import ExecutionConfig
from ..geometry.point import Point
from ..quality import IngestError, QualityConfig, RawRecord
from ..quality.pipeline import GARBLE_SITE
from ..quality.rules import NON_FINITE, OUT_OF_BOUNDS, TELEPORT, travel_distance
from ..resilience.faults import maybe_fault
from ..trajectory.trajectory import Trajectory, TrajectoryDatabase

__all__ = [
    "LATE_POLICIES",
    "EVICTION_POLICIES",
    "StreamPoint",
    "StreamStats",
    "StreamResult",
    "StreamingGatheringService",
]

#: Accepted dispositions for points arriving behind the mined frontier.
LATE_POLICIES = ("drop", "hold", "error")

#: ``"frozen"`` flushes non-extendable state after every window (Lemma 4);
#: ``"none"`` keeps everything in the live miners (debugging / small runs).
EVICTION_POLICIES = ("frozen", "none")

#: Small tolerance when mapping float timestamps onto the snapshot grid.
_GRID_EPS = 1e-9

PointLike = Union["StreamPoint", Tuple[int, float, float, float]]


@dataclass(frozen=True)
class StreamPoint:
    """One raw trajectory fix as it arrives on the feed."""

    object_id: int
    t: float
    x: float
    y: float


@dataclass
class StreamStats:
    """Counters describing one service's lifetime (survive checkpoints)."""

    points_ingested: int = 0
    points_late: int = 0
    points_held: int = 0
    windows_closed: int = 0
    clusters_built: int = 0
    crowds_frozen: int = 0
    gatherings_frozen: int = 0
    peak_pending_points: int = 0
    peak_retained_clusters: int = 0
    backpressure_events: int = 0
    #: Accumulated proximity-graph build seconds across window sweeps
    #: (non-zero only on the columnar frontier fast path).
    proximity_seconds: float = 0.0
    #: Live points rejected by the quality firewall (malformed/implausible).
    points_rejected: int = 0
    #: Live points kept after an in-place repair (bounds clamp).
    points_repaired: int = 0
    #: Per-reason-code breakdown of the rejected points.
    rejected_by_rule: Dict[str, int] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict view (stable key order) for JSON reports."""
        return {
            "points_ingested": self.points_ingested,
            "points_late": self.points_late,
            "points_held": self.points_held,
            "windows_closed": self.windows_closed,
            "clusters_built": self.clusters_built,
            "crowds_frozen": self.crowds_frozen,
            "gatherings_frozen": self.gatherings_frozen,
            "peak_pending_points": self.peak_pending_points,
            "peak_retained_clusters": self.peak_retained_clusters,
            "backpressure_events": self.backpressure_events,
            "proximity_seconds": self.proximity_seconds,
            "points_rejected": self.points_rejected,
            "points_repaired": self.points_repaired,
            "rejected_by_rule": dict(sorted(self.rejected_by_rule.items())),
        }


@dataclass
class StreamResult:
    """Global answer of a stream: frozen results plus the live frontier."""

    closed_crowds: List[Crowd] = field(default_factory=list)
    gatherings: List[Gathering] = field(default_factory=list)
    stats: StreamStats = field(default_factory=StreamStats)

    def summary(self) -> Dict[str, int]:
        """Headline counts of the mined answer."""
        return {
            "closed_crowds": len(self.closed_crowds),
            "closed_gatherings": len(self.gatherings),
            "windows": self.stats.windows_closed,
            "points": self.stats.points_ingested,
        }


class StreamingGatheringService:
    """Ingest raw trajectory points; maintain closed crowds and gatherings.

    Parameters
    ----------
    params:
        Mining thresholds (also fixes the snapshot grid via ``time_step``).
    window:
        Snapshots per window — how many grid timestamps are clustered and
        folded into the incremental miners at a time.
    range_search:
        Range-search scheme name for crowd discovery (Algorithm 1).
    config:
        Engine backend / chunk size / worker knobs; defaults to the scalar
        reference backend like the one-shot miners.
    slack:
        Reorder tolerance in snapshots: a window only closes once a point
        arrives ``slack`` snapshots past its end, so mild out-of-order feeds
        are absorbed without a late-point policy decision.
    late_policy:
        What to do with points behind the open window (see
        :data:`LATE_POLICIES`).
    eviction:
        ``"frozen"`` (default) bounds memory via Lemma 4 freezing;
        ``"none"`` keeps all state live (see :data:`EVICTION_POLICIES`).
    store:
        Optional :class:`~repro.store.PatternStore` sink.  Every Lemma-4
        eviction flush is appended to it as it happens and :meth:`finish`
        lands the remaining frontier results, so the store always holds the
        stream's durable answer (see :meth:`attach_store`).
    quality:
        Optional :class:`~repro.quality.QualityConfig` arming the live-point
        firewall: non-finite and out-of-bounds coordinates and teleport
        jumps (``max_speed``) are rejected before they reach the grid.
        ``strict`` raises :class:`~repro.quality.IngestError`; ``lenient``
        drops and counts (:attr:`StreamStats.points_rejected`); ``repair``
        additionally clamps out-of-bounds fixes onto the box instead of
        dropping them (the sequence repairs of the batch pipeline — sorting,
        dedup, splitting — are meaningless on a live frontier, where
        ordering is already governed by slack and the late-point policy).
        ``None`` disables the firewall entirely.
    counters:
        Optional :class:`~repro.resilience.counters.ResilienceCounters`;
        every rejected live point also increments its ``ingest_rejected``
        counter so embedding processes surface rejections on ``/stats``.
    """

    def __init__(
        self,
        params: Optional[GatheringParameters] = None,
        window: int = 10,
        range_search: str = "GRID",
        config: Optional[ExecutionConfig] = None,
        slack: int = 0,
        late_policy: str = "drop",
        eviction: str = "frozen",
        store=None,
        quality: Optional[QualityConfig] = None,
        counters=None,
    ) -> None:
        if window < 1:
            raise ValueError("window must span at least one snapshot")
        if slack < 0:
            raise ValueError("slack must be non-negative")
        if late_policy not in LATE_POLICIES:
            raise ValueError(
                f"unknown late_policy {late_policy!r}; choose from {LATE_POLICIES}"
            )
        if eviction not in EVICTION_POLICIES:
            raise ValueError(
                f"unknown eviction {eviction!r}; choose from {EVICTION_POLICIES}"
            )
        self.params = params or GatheringParameters()
        self.window = int(window)
        self.range_search = range_search
        self.config = config or ExecutionConfig(backend="python")
        self.slack = int(slack)
        self.late_policy = late_policy
        self.eviction = eviction
        self.quality = quality
        self.counters = counters
        # Last accepted fix per object (max-t), for the teleport gate.
        self._last_valid: Dict[int, Tuple[float, float, float]] = {}

        # Phase-1 clustering reuses the one-shot miner's backend plumbing;
        # phases 2-3 run through the incremental miner.  Cluster retention in
        # the incremental miner is only needed when nothing is ever evicted.
        self._clusterer = GatheringMiner(
            self.params, range_search=range_search, config=self.config
        )
        self._miner = IncrementalGatheringMiner(
            self.params,
            range_search=range_search,
            config=self.config,
            retain_clusters=(eviction == "none"),
        )

        # Stream position: the grid origin is the first accepted timestamp;
        # window w covers grid indices [w * window, (w + 1) * window).
        self._origin: Optional[float] = None
        self._open_window = 0
        self._max_seen_t: Optional[float] = None
        self._finished = False

        # Raw fixes of not-yet-closed windows, keyed object -> {t: Point}
        # (idempotent under at-least-once redelivery), plus the last folded
        # fix per object for boundary interpolation.
        self._pending: Dict[int, Dict[float, Point]] = {}
        self._pending_count = 0
        self._carry: Dict[int, Tuple[float, Point]] = {}

        # Append-only results flushed out of the live miners by eviction.
        self._frozen_crowds: List[Crowd] = []
        self._frozen_gatherings: List[Gathering] = []
        self._frozen_keys: Set[Tuple] = set()

        self.held_points: List[StreamPoint] = []
        self.stats = StreamStats()

        self._store = None
        if store is not None:
            self.attach_store(store)

    # -- persistence sink --------------------------------------------------------
    @property
    def store(self):
        """The attached :class:`~repro.store.PatternStore` sink, if any."""
        return self._store

    def attach_store(self, store) -> None:
        """Sink mined results into ``store`` from now on.

        The store records this service's mining parameters (rejecting a
        store written with different ones) and receives every subsequent
        eviction flush plus the :meth:`finish` results.  Checkpoints do not
        serialise the store attachment — a store is an external resource —
        so re-attach after :meth:`restore`; fingerprint-deduplicated inserts
        make re-flushing previously stored patterns harmless.
        """
        store.set_params(self.params)
        self._store = store

    # -- grid helpers -----------------------------------------------------------
    def _grid_index(self, t: float) -> int:
        """Snapshot-grid index of a timestamp (origin-relative)."""
        assert self._origin is not None
        return int(math.floor((t - self._origin) / self.params.time_step + _GRID_EPS))

    def _window_start_t(self, window_index: int) -> float:
        """Timestamp of the first grid snapshot of a window."""
        assert self._origin is not None
        return self._origin + window_index * self.window * self.params.time_step

    @property
    def frontier(self) -> Optional[float]:
        """The last timestamp folded into the miners (``None`` before any)."""
        return self._miner.last_timestamp

    @property
    def pending_points(self) -> int:
        """Raw fixes buffered in not-yet-closed windows."""
        return self._pending_count

    # -- quality firewall --------------------------------------------------------
    def _reject(self, point: StreamPoint, reason: str) -> None:
        """Disposition one invalid live point per the quality policy."""
        if self.quality.policy == "strict":
            raw = f"{point.object_id},{point.t},{point.x},{point.y}"
            record = RawRecord(
                index=self.stats.points_ingested + self.stats.points_rejected,
                raw=raw,
                object_id=point.object_id,
                t=point.t,
                x=point.x,
                y=point.y,
            )
            raise IngestError(reason, record)
        self.stats.points_rejected += 1
        self.stats.rejected_by_rule[reason] = (
            self.stats.rejected_by_rule.get(reason, 0) + 1
        )
        if self.counters is not None:
            self.counters.increment("ingest_rejected")

    def _check_point(self, point: StreamPoint) -> Optional[StreamPoint]:
        """Validate one live point; the (possibly clamped) point, or ``None``.

        Applies the stateless rules plus the teleport gate against the
        object's last accepted fix.  Duplicate timestamps are already
        idempotent in the pending buffer and ordering is governed by the
        window/slack machinery, so the sequence rules of the batch pipeline
        do not apply here.
        """
        quality = self.quality
        if not (
            math.isfinite(point.t)
            and math.isfinite(point.x)
            and math.isfinite(point.y)
        ):
            self._reject(point, NON_FINITE)
            return None
        if quality.bounds is not None:
            min_x, min_y, max_x, max_y = quality.bounds
            if not (min_x <= point.x <= max_x and min_y <= point.y <= max_y):
                if quality.policy == "repair":
                    point = StreamPoint(
                        point.object_id,
                        point.t,
                        min(max(point.x, min_x), max_x),
                        min(max(point.y, min_y), max_y),
                    )
                    self.stats.points_repaired += 1
                else:
                    self._reject(point, OUT_OF_BOUNDS)
                    return None
        if quality.max_speed is not None:
            previous = self._last_valid.get(point.object_id)
            if previous is not None and point.t > previous[0]:
                jump = travel_distance(
                    previous[1], previous[2], point.x, point.y, quality.metric
                )
                if jump > quality.max_speed * (point.t - previous[0]):
                    self._reject(point, TELEPORT)
                    return None
        return point

    # -- ingestion --------------------------------------------------------------
    def ingest(self, point: PointLike) -> bool:
        """Feed one fix; returns ``True`` if it was accepted for mining.

        Accepts a :class:`StreamPoint` or a plain ``(object_id, t, x, y)``
        tuple.  A point behind the open window is *late* and handled per
        :attr:`late_policy`; redelivery of an already-buffered fix is
        idempotent.
        """
        if self._finished:
            raise RuntimeError("cannot ingest into a finished stream")
        if not isinstance(point, StreamPoint):
            object_id, t, x, y = point
            point = StreamPoint(int(object_id), float(t), float(x), float(y))
        if maybe_fault(GARBLE_SITE) is not None:
            # Chaos harness: corrupt the live point before validation, the
            # same site the batch pipeline probes per record.
            point = StreamPoint(point.object_id, point.t, float("nan"), float("nan"))
        if self.quality is not None:
            point = self._check_point(point)
            if point is None:
                return False

        if self._origin is None:
            self._origin = point.t
        elif point.t < self._origin and self._open_window == 0:
            # Until the first window closes nothing has been folded, so the
            # grid origin can still slide down to cover a reordered stream
            # head (the batch pipeline anchors its grid at the global
            # minimum timestamp; this keeps the two grids aligned).
            self._origin = point.t

        index = self._grid_index(point.t)
        if index < self._open_window * self.window:
            self.stats.points_late += 1
            if self.late_policy == "error":
                raise ValueError(
                    f"late point (object {point.object_id}, t={point.t:g}) behind "
                    f"window starting at t={self._window_start_t(self._open_window):g}"
                )
            if self.late_policy == "hold":
                self.held_points.append(point)
                self.stats.points_held += 1
            return False

        # Close every window the watermark has moved past (plus slack).
        while index >= (self._open_window + 1) * self.window + self.slack:
            self._close_window()

        bucket = self._pending.setdefault(point.object_id, {})
        if point.t not in bucket:
            self._pending_count += 1
            self.stats.points_ingested += 1
        bucket[point.t] = Point(point.x, point.y)
        if self.quality is not None:
            previous = self._last_valid.get(point.object_id)
            if previous is None or point.t > previous[0]:
                self._last_valid[point.object_id] = (point.t, point.x, point.y)
        if self._max_seen_t is None or point.t > self._max_seen_t:
            self._max_seen_t = point.t
        if self._pending_count > self.stats.peak_pending_points:
            self.stats.peak_pending_points = self._pending_count
        return True

    def ingest_many(self, points: Iterable[PointLike]) -> int:
        """Feed a batch of fixes in arrival order; returns how many were accepted."""
        accepted = 0
        for point in points:
            if self.ingest(point):
                accepted += 1
        return accepted

    # -- window lifecycle --------------------------------------------------------
    def _window_timestamps(self, window_index: int, clamp: bool) -> List[float]:
        """Grid snapshots of one window (clamped to the last seen fix at flush)."""
        assert self._origin is not None
        start = window_index * self.window
        stop = (window_index + 1) * self.window
        if clamp:
            if self._max_seen_t is None:
                return []
            stop = min(stop, self._grid_index(self._max_seen_t) + 1)
        step = self.params.time_step
        return [self._origin + i * step for i in range(start, stop)]

    def _close_window(self, clamp: bool = False) -> None:
        """Cluster one window's snapshots and fold them into the miners."""
        window_index = self._open_window
        self._open_window += 1
        timestamps = self._window_timestamps(window_index, clamp)
        if not timestamps:
            return
        window_end = timestamps[-1] + self.params.time_step - _GRID_EPS

        # Interpolation anchors: every fix that has arrived for the object
        # (fixes of future windows stay pending but still anchor the right
        # edge) plus the last folded fix, so virtual points across window
        # boundaries match what the batch pipeline would interpolate.
        database = TrajectoryDatabase()
        for object_id, samples in self._pending.items():
            anchors = sorted(samples.items())
            carried = self._carry.get(object_id)
            if carried is not None:
                anchors = [carried] + anchors
            database.add(Trajectory(object_id, anchors))
            taken = [t for t in samples if t < window_end]
            if taken:
                last = max(taken)
                self._carry[object_id] = (last, samples[last])
                for t in taken:
                    del samples[t]
                self._pending_count -= len(taken)
        self._pending = {
            oid: samples for oid, samples in self._pending.items() if samples
        }

        cluster_db = self._clusterer.cluster(database, timestamps=timestamps)
        self.stats.clusters_built += len(cluster_db)
        # Accumulate the delta (not the miner's running total): the stats
        # counters survive checkpoints while the miner is rebuilt, so the
        # totals would double-count after a restore.
        graph_before = self._miner.proximity_seconds
        self._miner.update(cluster_db)
        self.stats.proximity_seconds += self._miner.proximity_seconds - graph_before
        self.stats.windows_closed += 1

        if self.eviction == "frozen" and self._miner.last_timestamp is not None:
            flushed_crowds: List[Crowd] = []
            flushed_gatherings: List[Gathering] = []
            for crowd, found in self._miner.freeze_before(self._miner.last_timestamp):
                key = crowd.keys()
                if key in self._frozen_keys:
                    continue
                self._frozen_keys.add(key)
                self._frozen_crowds.append(crowd)
                self._frozen_gatherings.extend(found)
                flushed_crowds.append(crowd)
                flushed_gatherings.extend(found)
                self.stats.crowds_frozen += 1
                self.stats.gatherings_frozen += len(found)
            if self._store is not None and flushed_crowds:
                self._store.add_crowds(flushed_crowds)
                self._store.add_gatherings(dedupe_gatherings(flushed_gatherings))

        retained = self.retained_cluster_count()
        if retained > self.stats.peak_retained_clusters:
            self.stats.peak_retained_clusters = retained

    def finish(self) -> StreamResult:
        """Flush every pending window and return the final global answer.

        After this the service is sealed: further :meth:`ingest` calls raise.
        """
        if not self._finished:
            if self._origin is not None and self._max_seen_t is not None:
                last_window = self._grid_index(self._max_seen_t) // self.window
                while self._open_window <= last_window:
                    self._close_window(clamp=True)
            self._finished = True
        result = self.results()
        if self._store is not None:
            # Land the frontier state too: after finish() the store holds
            # the stream's complete answer (evictions already flushed are
            # deduplicated by fingerprint).
            self._store.add_crowds(result.closed_crowds)
            self._store.add_gatherings(result.gatherings)
        return result

    # -- answers ----------------------------------------------------------------
    def results(self) -> StreamResult:
        """The current global answer: frozen results plus live frontier state."""
        crowds = list(self._frozen_crowds)
        gatherings = list(self._frozen_gatherings)
        for crowd in self._miner.closed_crowds:
            if crowd.keys() not in self._frozen_keys:
                crowds.append(crowd)
        gatherings.extend(self._miner.gatherings)
        return StreamResult(
            closed_crowds=crowds,
            gatherings=dedupe_gatherings(gatherings),
            stats=self.stats,
        )

    def retained_cluster_count(self) -> int:
        """Distinct snapshot clusters referenced by live (evictable) state.

        This is the quantity the ``"frozen"`` eviction policy bounds: with it
        enabled, only clusters reachable from the frontier candidate set (and
        crowds still ending at the frontier) stay referenced; everything
        older has been flushed to the frozen results store.
        """
        keys: Set[Tuple[float, int]] = set()
        for crowd in self._miner.open_candidates:
            keys.update(cluster.key() for cluster in crowd.clusters)
        for crowd in self._miner.closed_crowds:
            keys.update(cluster.key() for cluster in crowd.clusters)
        count = len(keys)
        if self._miner.retain_clusters:
            count += len(self._miner.cluster_db)
        return count

    # -- checkpoint / restore ----------------------------------------------------
    def checkpoint(self, path, keep: int = 1) -> None:
        """Serialise the full service state to ``path`` (versioned JSON).

        ``keep`` previous checkpoints rotate to ``<path>.1`` … before the
        new one lands, so a corrupted write can fall back on restore.  See
        :mod:`repro.stream.checkpoint` for the format and integrity story.
        """
        from .checkpoint import save_checkpoint

        save_checkpoint(self, path, keep=keep)

    @classmethod
    def restore(cls, path) -> "StreamingGatheringService":
        """Rebuild a service from a :meth:`checkpoint` file.

        The restored service resumes exactly where the original stopped:
        replaying the remainder of the feed yields results identical to an
        uninterrupted run (redelivered in-window points are idempotent,
        already-folded ones fall under the late-point policy).
        """
        from .checkpoint import load_checkpoint

        return load_checkpoint(path)
