"""Versioned on-disk snapshots of a :class:`StreamingGatheringService`.

The checkpoint is a single JSON document (format tag
``repro-stream-checkpoint``, version 1) capturing everything the service
needs to resume exactly where it stopped:

* the mining parameters, execution config and service knobs;
* the stream position — grid origin, open window index, carried per-object
  fixes, the raw pending buffer and any held late points;
* the live incremental miner state — the frontier candidate set of
  Algorithm 1 (Lemma 4), the still-live closed crowds, their gatherings and
  the last folded timestamp;
* the frozen (evicted) results accumulated so far, and the stats counters.

Snapshot clusters are stored value-complete through the shared pattern
codecs (:mod:`repro.core.codec` — also used by the persistent
:class:`~repro.store.PatternStore`), so a restored service rebuilds
:class:`~repro.clustering.snapshot.SnapshotCluster` /
:class:`~repro.core.crowd.Crowd` / :class:`~repro.core.gathering.Gathering`
objects that compare equal to the originals.  All floats round-trip exactly
through JSON (shortest-repr float encoding), which is what makes a restored
run bit-identical to an uninterrupted one.

Checkpoints are also integrity-protected and rotated: every document
carries a SHA-256 digest over its own canonical JSON, :func:`save_checkpoint`
shifts the previous checkpoint to ``<path>.1`` (``.2``, … up to ``keep``)
before atomically landing the new one, and :func:`load_checkpoint` verifies
the digest and schema — falling back to the newest rotated copy that still
verifies when the primary is torn or corrupted, so a crash mid-write (or a
bad disk) costs at most one checkpoint interval, never the whole run.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import List, Union

from ..clustering.snapshot import ClusterDatabase
from ..core.codec import (
    crowd_key_from_json as _crowd_key,
    decode_cluster as _decode_cluster,
    decode_crowd as _decode_crowd,
    decode_gathering as _decode_gathering,
    encode_cluster as _encode_cluster,
    encode_crowd as _encode_crowd,
    encode_gathering as _encode_gathering,
)
from ..core.config import GatheringParameters
from ..engine.registry import ExecutionConfig
from ..geometry.point import Point
from ..resilience.faults import maybe_fault

__all__ = [
    "CHECKPOINT_FORMAT",
    "CHECKPOINT_VERSION",
    "CheckpointCorruptionError",
    "save_checkpoint",
    "load_checkpoint",
]

CHECKPOINT_FORMAT = "repro-stream-checkpoint"
CHECKPOINT_VERSION = 1

#: Top-level sections every valid checkpoint document must carry.
_REQUIRED_SECTIONS = ("params", "execution", "service", "stream", "miner", "frozen", "stats")

PathLike = Union[str, Path]


class CheckpointCorruptionError(ValueError):
    """No candidate checkpoint file passed integrity verification.

    Subclasses :class:`ValueError` so callers that predate rotation (and
    caught ``ValueError`` from a bad file) keep working unchanged.
    """


def _document_digest(document: dict) -> str:
    """SHA-256 over the document's canonical JSON, ``integrity`` excluded."""
    payload = {key: value for key, value in document.items() if key != "integrity"}
    canonical = json.dumps(payload, sort_keys=True)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _rotated_path(path: Path, index: int) -> Path:
    """The ``index``-th rotated sibling of a checkpoint path (``<name>.N``)."""
    return path.with_name(f"{path.name}.{index}")


def _rotate_checkpoints(path: Path, keep: int) -> None:
    """Shift ``path`` → ``path.1`` → … → ``path.keep`` before a new write."""
    if keep < 1 or not path.exists():
        return
    oldest = _rotated_path(path, keep)
    if oldest.exists():
        oldest.unlink()
    for index in range(keep - 1, 0, -1):
        source = _rotated_path(path, index)
        if source.exists():
            os.replace(source, _rotated_path(path, index + 1))
    os.replace(path, _rotated_path(path, 1))


# -- top-level save / load ----------------------------------------------------------
def save_checkpoint(service, path: PathLike, keep: int = 1) -> None:
    """Write ``service``'s full state to ``path`` as versioned, digested JSON.

    ``keep`` previous checkpoints are rotated to ``<path>.1`` …
    ``<path>.keep`` before the new document lands (``keep=0`` disables
    rotation and restores the old overwrite behaviour); the write itself is
    staged and renamed, so a crash at any instant leaves either the old or
    the new checkpoint fully intact on the primary path.
    """
    miner = service._miner
    crowd_miner = miner._crowd_miner
    document = {
        "format": CHECKPOINT_FORMAT,
        "version": CHECKPOINT_VERSION,
        "params": service.params.as_dict(),
        "execution": {
            "backend": service.config.backend,
            "chunk_size": service.config.chunk_size,
            "workers": service.config.workers,
        },
        "service": {
            "window": service.window,
            "range_search": service.range_search,
            "slack": service.slack,
            "late_policy": service.late_policy,
            "eviction": service.eviction,
            "quality": None
            if service.quality is None
            else {
                "policy": service.quality.policy,
                "max_speed": service.quality.max_speed,
                "min_samples": service.quality.min_samples,
                "bounds": None
                if service.quality.bounds is None
                else list(service.quality.bounds),
                "metric": service.quality.metric,
            },
        },
        "stream": {
            "origin": service._origin,
            "open_window": service._open_window,
            "max_seen_t": service._max_seen_t,
            "finished": service._finished,
            "carry": [
                [oid, t, p.x, p.y] for oid, (t, p) in service._carry.items()
            ],
            "pending": [
                [oid, [[t, p.x, p.y] for t, p in samples.items()]]
                for oid, samples in service._pending.items()
            ],
            "held": [
                [hp.object_id, hp.t, hp.x, hp.y] for hp in service.held_points
            ],
            "last_valid": [
                [oid, t, x, y] for oid, (t, x, y) in service._last_valid.items()
            ],
        },
        "miner": {
            "last_timestamp": crowd_miner.last_timestamp,
            "closed_crowds": [_encode_crowd(c) for c in crowd_miner.closed_crowds],
            "open_candidates": [_encode_crowd(c) for c in crowd_miner.open_candidates],
            "gatherings_by_crowd": [
                {
                    "key": [[t, cid] for t, cid in key],
                    "gatherings": [_encode_gathering(g) for g in found],
                }
                for key, found in miner._gatherings_by_crowd.items()
            ],
            "cluster_db": [
                _encode_cluster(cluster) for cluster in miner.cluster_db
            ],
        },
        "frozen": {
            "crowds": [_encode_crowd(c) for c in service._frozen_crowds],
            "gatherings": [_encode_gathering(g) for g in service._frozen_gatherings],
        },
        "stats": service.stats.as_dict(),
    }
    document["integrity"] = {
        "algorithm": "sha256",
        "digest": _document_digest(document),
    }
    # Write-then-rename: a crash mid-write (the very scenario checkpoints
    # exist for) must never destroy the previous good checkpoint.
    path = Path(path)
    staging = path.with_name(path.name + ".tmp")
    staging.write_text(json.dumps(document))
    if maybe_fault("checkpoint.torn") is not None:
        # Chaos harness: tear the staged file mid-document before it lands,
        # as a crash between write() and fsync-on-rename would.
        size = staging.stat().st_size
        with open(staging, "r+b") as handle:
            handle.truncate(max(1, size // 2))
    _rotate_checkpoints(path, keep)
    os.replace(staging, path)


def _validate_document(path: Path, document: dict) -> None:
    """Raise on any format/version/schema/digest problem in ``document``."""
    if document.get("format") != CHECKPOINT_FORMAT:
        raise ValueError(f"{path} is not a {CHECKPOINT_FORMAT} file")
    if document.get("version") != CHECKPOINT_VERSION:
        raise ValueError(
            f"unsupported checkpoint version {document.get('version')!r} "
            f"(this build reads version {CHECKPOINT_VERSION})"
        )
    missing = [key for key in _REQUIRED_SECTIONS if key not in document]
    if missing:
        raise CheckpointCorruptionError(
            f"{path} is missing checkpoint sections: {', '.join(missing)}"
        )
    integrity = document.get("integrity")
    if integrity is not None:
        # Older checkpoints carry no digest; they still load (schema above
        # is the only guard we have for them).
        digest = _document_digest(document)
        if integrity.get("digest") != digest:
            raise CheckpointCorruptionError(
                f"{path} fails its integrity digest "
                f"(sha256 {digest} != recorded {integrity.get('digest')})"
            )


def load_checkpoint(path: PathLike, fallback: bool = True):
    """Rebuild a :class:`StreamingGatheringService` from a checkpoint file.

    The document is schema- and digest-verified before anything is rebuilt.
    With ``fallback`` enabled (the default), a torn or corrupted primary
    falls back to the newest rotated sibling (``<path>.1``, ``<path>.2``, …)
    that still verifies; :class:`CheckpointCorruptionError` lists every
    candidate tried when none is usable.
    """
    path = Path(path)
    candidates: List[Path] = [path]
    if fallback:
        index = 1
        while True:
            rotated = _rotated_path(path, index)
            if not rotated.exists():
                break
            candidates.append(rotated)
            index += 1
    failures: List[str] = []
    for candidate in candidates:
        try:
            document = json.loads(candidate.read_text())
            _validate_document(candidate, document)
        except FileNotFoundError:
            if len(candidates) == 1:
                raise  # no rotation to fall back to; keep the plain error
            failures.append(f"{candidate}: missing")
            continue
        except (ValueError, OSError) as error:
            failures.append(f"{candidate}: {error}")
            continue
        return _service_from_document(document)
    raise CheckpointCorruptionError(
        "no usable checkpoint; every candidate failed verification: "
        + "; ".join(failures)
    )


def _service_from_document(document: dict):
    """Materialise a live service from a verified checkpoint document."""
    from ..quality import QualityConfig
    from .service import StreamingGatheringService, StreamPoint, StreamStats

    # Older checkpoints predate the quality firewall; they restore with it
    # disarmed, exactly how they were running when written.
    quality_state = document["service"].get("quality")
    quality = None
    if quality_state is not None:
        quality = QualityConfig(
            policy=quality_state["policy"],
            max_speed=quality_state["max_speed"],
            min_samples=quality_state["min_samples"],
            bounds=None
            if quality_state["bounds"] is None
            else tuple(quality_state["bounds"]),
            metric=quality_state["metric"],
        )

    service = StreamingGatheringService(
        params=GatheringParameters(**document["params"]),
        window=document["service"]["window"],
        range_search=document["service"]["range_search"],
        config=ExecutionConfig(**document["execution"]),
        slack=document["service"]["slack"],
        late_policy=document["service"]["late_policy"],
        eviction=document["service"]["eviction"],
        quality=quality,
    )

    stream = document["stream"]
    service._origin = stream["origin"]
    service._open_window = int(stream["open_window"])
    service._max_seen_t = stream["max_seen_t"]
    service._finished = bool(stream["finished"])
    service._carry = {
        int(oid): (float(t), Point(float(x), float(y)))
        for oid, t, x, y in stream["carry"]
    }
    service._pending = {
        int(oid): {float(t): Point(float(x), float(y)) for t, x, y in samples}
        for oid, samples in stream["pending"]
    }
    service._pending_count = sum(len(s) for s in service._pending.values())
    service.held_points = [
        StreamPoint(int(oid), float(t), float(x), float(y))
        for oid, t, x, y in stream["held"]
    ]
    service._last_valid = {
        int(oid): (float(t), float(x), float(y))
        for oid, t, x, y in stream.get("last_valid", [])
    }

    miner_state = document["miner"]
    crowd_miner = service._miner._crowd_miner
    crowd_miner.last_timestamp = miner_state["last_timestamp"]
    crowd_miner.closed_crowds = [
        _decode_crowd(c) for c in miner_state["closed_crowds"]
    ]
    crowd_miner.open_candidates = [
        _decode_crowd(c) for c in miner_state["open_candidates"]
    ]
    service._miner._gatherings_by_crowd = {
        _crowd_key(entry["key"]): [
            _decode_gathering(g) for g in entry["gatherings"]
        ]
        for entry in miner_state["gatherings_by_crowd"]
    }
    cluster_db = ClusterDatabase()
    for encoded in miner_state["cluster_db"]:
        cluster_db.add(_decode_cluster(encoded))
    service._miner._cluster_db = cluster_db

    frozen = document["frozen"]
    service._frozen_crowds = [_decode_crowd(c) for c in frozen["crowds"]]
    service._frozen_gatherings = [
        _decode_gathering(g) for g in frozen["gatherings"]
    ]
    service._frozen_keys = {crowd.keys() for crowd in service._frozen_crowds}

    service.stats = StreamStats(**document["stats"])
    return service
