"""Versioned on-disk snapshots of a :class:`StreamingGatheringService`.

The checkpoint is a single JSON document (format tag
``repro-stream-checkpoint``, version 1) capturing everything the service
needs to resume exactly where it stopped:

* the mining parameters, execution config and service knobs;
* the stream position — grid origin, open window index, carried per-object
  fixes, the raw pending buffer and any held late points;
* the live incremental miner state — the frontier candidate set of
  Algorithm 1 (Lemma 4), the still-live closed crowds, their gatherings and
  the last folded timestamp;
* the frozen (evicted) results accumulated so far, and the stats counters.

Snapshot clusters are stored value-complete through the shared pattern
codecs (:mod:`repro.core.codec` — also used by the persistent
:class:`~repro.store.PatternStore`), so a restored service rebuilds
:class:`~repro.clustering.snapshot.SnapshotCluster` /
:class:`~repro.core.crowd.Crowd` / :class:`~repro.core.gathering.Gathering`
objects that compare equal to the originals.  All floats round-trip exactly
through JSON (shortest-repr float encoding), which is what makes a restored
run bit-identical to an uninterrupted one.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Union

from ..clustering.snapshot import ClusterDatabase
from ..core.codec import (
    crowd_key_from_json as _crowd_key,
    decode_cluster as _decode_cluster,
    decode_crowd as _decode_crowd,
    decode_gathering as _decode_gathering,
    encode_cluster as _encode_cluster,
    encode_crowd as _encode_crowd,
    encode_gathering as _encode_gathering,
)
from ..core.config import GatheringParameters
from ..engine.registry import ExecutionConfig
from ..geometry.point import Point

__all__ = ["CHECKPOINT_FORMAT", "CHECKPOINT_VERSION", "save_checkpoint", "load_checkpoint"]

CHECKPOINT_FORMAT = "repro-stream-checkpoint"
CHECKPOINT_VERSION = 1

PathLike = Union[str, Path]


# -- top-level save / load ----------------------------------------------------------
def save_checkpoint(service, path: PathLike) -> None:
    """Write ``service``'s full state to ``path`` as versioned JSON."""
    miner = service._miner
    crowd_miner = miner._crowd_miner
    document = {
        "format": CHECKPOINT_FORMAT,
        "version": CHECKPOINT_VERSION,
        "params": service.params.as_dict(),
        "execution": {
            "backend": service.config.backend,
            "chunk_size": service.config.chunk_size,
            "workers": service.config.workers,
        },
        "service": {
            "window": service.window,
            "range_search": service.range_search,
            "slack": service.slack,
            "late_policy": service.late_policy,
            "eviction": service.eviction,
        },
        "stream": {
            "origin": service._origin,
            "open_window": service._open_window,
            "max_seen_t": service._max_seen_t,
            "finished": service._finished,
            "carry": [
                [oid, t, p.x, p.y] for oid, (t, p) in service._carry.items()
            ],
            "pending": [
                [oid, [[t, p.x, p.y] for t, p in samples.items()]]
                for oid, samples in service._pending.items()
            ],
            "held": [
                [hp.object_id, hp.t, hp.x, hp.y] for hp in service.held_points
            ],
        },
        "miner": {
            "last_timestamp": crowd_miner.last_timestamp,
            "closed_crowds": [_encode_crowd(c) for c in crowd_miner.closed_crowds],
            "open_candidates": [_encode_crowd(c) for c in crowd_miner.open_candidates],
            "gatherings_by_crowd": [
                {
                    "key": [[t, cid] for t, cid in key],
                    "gatherings": [_encode_gathering(g) for g in found],
                }
                for key, found in miner._gatherings_by_crowd.items()
            ],
            "cluster_db": [
                _encode_cluster(cluster) for cluster in miner.cluster_db
            ],
        },
        "frozen": {
            "crowds": [_encode_crowd(c) for c in service._frozen_crowds],
            "gatherings": [_encode_gathering(g) for g in service._frozen_gatherings],
        },
        "stats": service.stats.as_dict(),
    }
    # Write-then-rename: a crash mid-write (the very scenario checkpoints
    # exist for) must never destroy the previous good checkpoint.
    path = Path(path)
    staging = path.with_name(path.name + ".tmp")
    staging.write_text(json.dumps(document))
    os.replace(staging, path)


def load_checkpoint(path: PathLike):
    """Rebuild a :class:`StreamingGatheringService` from a checkpoint file."""
    from .service import StreamingGatheringService, StreamPoint, StreamStats

    document = json.loads(Path(path).read_text())
    if document.get("format") != CHECKPOINT_FORMAT:
        raise ValueError(f"{path} is not a {CHECKPOINT_FORMAT} file")
    if document.get("version") != CHECKPOINT_VERSION:
        raise ValueError(
            f"unsupported checkpoint version {document.get('version')!r} "
            f"(this build reads version {CHECKPOINT_VERSION})"
        )

    service = StreamingGatheringService(
        params=GatheringParameters(**document["params"]),
        window=document["service"]["window"],
        range_search=document["service"]["range_search"],
        config=ExecutionConfig(**document["execution"]),
        slack=document["service"]["slack"],
        late_policy=document["service"]["late_policy"],
        eviction=document["service"]["eviction"],
    )

    stream = document["stream"]
    service._origin = stream["origin"]
    service._open_window = int(stream["open_window"])
    service._max_seen_t = stream["max_seen_t"]
    service._finished = bool(stream["finished"])
    service._carry = {
        int(oid): (float(t), Point(float(x), float(y)))
        for oid, t, x, y in stream["carry"]
    }
    service._pending = {
        int(oid): {float(t): Point(float(x), float(y)) for t, x, y in samples}
        for oid, samples in stream["pending"]
    }
    service._pending_count = sum(len(s) for s in service._pending.values())
    service.held_points = [
        StreamPoint(int(oid), float(t), float(x), float(y))
        for oid, t, x, y in stream["held"]
    ]

    miner_state = document["miner"]
    crowd_miner = service._miner._crowd_miner
    crowd_miner.last_timestamp = miner_state["last_timestamp"]
    crowd_miner.closed_crowds = [
        _decode_crowd(c) for c in miner_state["closed_crowds"]
    ]
    crowd_miner.open_candidates = [
        _decode_crowd(c) for c in miner_state["open_candidates"]
    ]
    service._miner._gatherings_by_crowd = {
        _crowd_key(entry["key"]): [
            _decode_gathering(g) for g in entry["gatherings"]
        ]
        for entry in miner_state["gatherings_by_crowd"]
    }
    cluster_db = ClusterDatabase()
    for encoded in miner_state["cluster_db"]:
        cluster_db.add(_decode_cluster(encoded))
    service._miner._cluster_db = cluster_db

    frozen = document["frozen"]
    service._frozen_crowds = [_decode_crowd(c) for c in frozen["crowds"]]
    service._frozen_gatherings = [
        _decode_gathering(g) for g in frozen["gatherings"]
    ]
    service._frozen_keys = {crowd.keys() for crowd in service._frozen_crowds}

    service.stats = StreamStats(**document["stats"])
    return service
