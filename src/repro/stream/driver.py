"""Backpressure-aware replay driver for point feeds.

:class:`ReplayDriver` pulls a feed (any iterable of ``(object_id, t, x, y)``
fixes in arrival order) through a :class:`StreamingGatheringService` in
bounded batches.  Chunking the arrivals serves two purposes:

* each accepted batch flows through the engine's batched kernels when its
  window closes (one :class:`~repro.engine.registry.ExecutionConfig`-sized
  clustering / range-search pass per window, not one per point);
* the driver observes the service's pending-buffer depth after every batch —
  the stream-side backpressure signal.  In this pull-based replay the driver
  *is* the producer, so crossing ``max_pending_points`` is recorded in the
  stats (``backpressure_events``) rather than blocking; a push-based
  deployment would propagate the same signal to throttle its upstream.

The driver also owns the checkpoint cadence: with ``checkpoint_every`` set
it writes a checkpoint after every N closed windows, which is what the
``repro stream`` CLI exposes as ``--checkpoint-every``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from itertools import islice
from pathlib import Path
from typing import Iterable, Optional, Union

from .service import PointLike, StreamingGatheringService, StreamResult

__all__ = ["ReplayReport", "ReplayDriver"]


@dataclass
class ReplayReport:
    """Outcome of one feed replay."""

    result: StreamResult
    points: int
    elapsed_seconds: float
    checkpoints_written: int

    @property
    def points_per_second(self) -> float:
        """Ingest throughput over the whole replay (0 for an empty feed)."""
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.points / self.elapsed_seconds


class ReplayDriver:
    """Drive a point feed through a streaming service in bounded batches.

    Parameters
    ----------
    service:
        The target :class:`StreamingGatheringService`.
    batch_size:
        Fixes ingested per batch; bounds the driver-side working set.
    checkpoint_path:
        Where to write checkpoints (required when ``checkpoint_every`` set).
    checkpoint_every:
        Write a checkpoint each time this many new windows have closed.
    checkpoint_keep:
        Rotated previous checkpoints kept next to ``checkpoint_path``
        (restore falls back to them when the primary is corrupted).
    max_pending_points:
        Backpressure high-watermark on the service's pending buffer.
    """

    def __init__(
        self,
        service: StreamingGatheringService,
        batch_size: int = 2048,
        checkpoint_path: Optional[Union[str, Path]] = None,
        checkpoint_every: Optional[int] = None,
        checkpoint_keep: int = 1,
        max_pending_points: Optional[int] = None,
    ) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be at least 1")
        if checkpoint_every is not None:
            if checkpoint_every < 1:
                raise ValueError("checkpoint_every must be at least 1")
            if checkpoint_path is None:
                raise ValueError("checkpoint_every requires a checkpoint_path")
        if checkpoint_keep < 0:
            raise ValueError("checkpoint_keep must be non-negative")
        self.service = service
        self.batch_size = int(batch_size)
        self.checkpoint_path = checkpoint_path
        self.checkpoint_every = checkpoint_every
        self.checkpoint_keep = int(checkpoint_keep)
        self.max_pending_points = max_pending_points

    def replay(self, feed: Iterable[PointLike], finish: bool = True) -> ReplayReport:
        """Ingest the whole feed; optionally flush the final partial window.

        With ``finish=False`` the service is left open (e.g. to checkpoint
        once more and hand off to another process); the report then covers
        only what has been folded so far.
        """
        service = self.service
        iterator = iter(feed)
        points = 0
        checkpoints = 0
        windows_at_last_checkpoint = service.stats.windows_closed
        started = time.perf_counter()

        while True:
            batch = list(islice(iterator, self.batch_size))
            if not batch:
                break
            service.ingest_many(batch)
            points += len(batch)
            if (
                self.max_pending_points is not None
                and service.pending_points > self.max_pending_points
            ):
                service.stats.backpressure_events += 1
            if (
                self.checkpoint_every is not None
                and service.stats.windows_closed - windows_at_last_checkpoint
                >= self.checkpoint_every
            ):
                service.checkpoint(self.checkpoint_path, keep=self.checkpoint_keep)
                windows_at_last_checkpoint = service.stats.windows_closed
                checkpoints += 1

        result = service.finish() if finish else service.results()
        elapsed = time.perf_counter() - started
        return ReplayReport(
            result=result,
            points=points,
            elapsed_seconds=elapsed,
            checkpoints_written=checkpoints,
        )
