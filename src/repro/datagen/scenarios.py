"""Scenario presets mirroring the paper's dataset slices.

The effectiveness study (Figure 5) groups one day of Beijing taxi data by
time-of-day (peak / work / casual) and the 92 days by weather (clear / rainy
/ snowy).  These presets encode, per regime, how many durable gathering
events, transient drop-off crowds and travelling platoons a simulated slice
contains — chosen so that the mined pattern counts reproduce the qualitative
shape of Figure 5:

* peak time: heavy congestion — many gatherings, several platoons;
* work time: dispersed destinations — few of everything;
* casual time: entertainment drop-offs — many crowds but few gatherings,
  common destinations bring platoons back;
* clear → rainy → snowy: progressively more congestion (more gatherings),
  with snowy days full of short-lived incident crowds (large crowd-vs-
  gathering gap) and intermittently dispersing platoons (fewer convoys while
  swarms survive).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

import numpy as np

from ..geometry.point import Point
from ..trajectory.trajectory import Trajectory, TrajectoryDatabase
from .events import GatheringEvent, TransientCrowdEvent, TravelingGroupEvent
from .road_network import RoadNetwork
from .simulator import SimulationConfig, SimulationResult, TaxiFleetSimulator

__all__ = [
    "ScenarioProfile",
    "TIME_OF_DAY_PROFILES",
    "WEATHER_PROFILES",
    "STREAMING_PROFILE",
    "build_scenario",
    "time_of_day_scenario",
    "weather_scenario",
    "efficiency_scenario",
    "streaming_scenario",
    "city_scenario",
    "metro_scenario",
    "megacity_scenario",
    "arrival_stream",
]


@dataclass(frozen=True)
class ScenarioProfile:
    """Event mix of one regime (counts are per simulated slice)."""

    gatherings: int
    transients: int
    platoons: int
    gathering_participants: int = 18
    gathering_duration: int = 40
    transient_concurrent: int = 6
    transient_dwell: int = 3
    platoon_size: int = 16
    platoon_disperse_every: Optional[int] = None


TIME_OF_DAY_PROFILES: Dict[str, ScenarioProfile] = {
    "peak": ScenarioProfile(gatherings=5, transients=2, platoons=3),
    "work": ScenarioProfile(gatherings=2, transients=2, platoons=1),
    "casual": ScenarioProfile(gatherings=1, transients=5, platoons=3),
}

WEATHER_PROFILES: Dict[str, ScenarioProfile] = {
    "clear": ScenarioProfile(gatherings=2, transients=2, platoons=2),
    "rainy": ScenarioProfile(gatherings=4, transients=3, platoons=2),
    "snowy": ScenarioProfile(
        gatherings=6,
        transients=6,
        platoons=2,
        platoon_disperse_every=4,
    ),
}


def build_scenario(
    profile: ScenarioProfile,
    fleet_size: int = 300,
    duration: int = 80,
    seed: int = 17,
    network: Optional[RoadNetwork] = None,
) -> SimulationResult:
    """Simulate one slice of a day with the event mix of ``profile``."""
    network = network or RoadNetwork(rows=16, cols=16, block_size=500.0)
    rng = np.random.default_rng(seed)
    simulator = TaxiFleetSimulator(network=network, seed=seed)

    def random_location() -> Point:
        return Point(
            float(rng.uniform(0.15, 0.85)) * network.width,
            float(rng.uniform(0.15, 0.85)) * network.height,
        )

    gathering_events: List[GatheringEvent] = []
    for _ in range(profile.gatherings):
        start = int(rng.integers(5, max(6, duration - profile.gathering_duration - 5)))
        gathering_events.append(
            GatheringEvent(
                center=random_location(),
                start=start,
                end=min(start + profile.gathering_duration, duration - 2),
                participants=profile.gathering_participants,
            )
        )

    transient_events: List[TransientCrowdEvent] = []
    for _ in range(profile.transients):
        start = int(rng.integers(5, max(6, duration - 30)))
        transient_events.append(
            TransientCrowdEvent(
                center=random_location(),
                start=start,
                end=min(start + 30, duration - 2),
                concurrent=profile.transient_concurrent,
                dwell=profile.transient_dwell,
            )
        )

    traveling_groups: List[TravelingGroupEvent] = []
    for _ in range(profile.platoons):
        traveling_groups.append(
            TravelingGroupEvent(
                origin=random_location(),
                destination=random_location(),
                start=int(rng.integers(0, max(1, duration // 3))),
                size=profile.platoon_size,
                disperse_every=profile.platoon_disperse_every,
            )
        )

    config = SimulationConfig(fleet_size=fleet_size, duration=duration)
    return simulator.simulate(
        config,
        gathering_events=gathering_events,
        transient_events=transient_events,
        traveling_groups=traveling_groups,
    )


def time_of_day_scenario(
    period: str, fleet_size: int = 300, duration: int = 80, seed: int = 17
) -> SimulationResult:
    """Simulated slice for one time-of-day regime (Figure 5a)."""
    if period not in TIME_OF_DAY_PROFILES:
        raise ValueError(
            f"unknown period {period!r}; choose from {sorted(TIME_OF_DAY_PROFILES)}"
        )
    return build_scenario(
        TIME_OF_DAY_PROFILES[period], fleet_size=fleet_size, duration=duration, seed=seed
    )


def weather_scenario(
    weather: str, fleet_size: int = 420, duration: int = 80, seed: int = 29
) -> SimulationResult:
    """Simulated slice for one weather regime (Figure 5b)."""
    if weather not in WEATHER_PROFILES:
        raise ValueError(
            f"unknown weather {weather!r}; choose from {sorted(WEATHER_PROFILES)}"
        )
    return build_scenario(
        WEATHER_PROFILES[weather], fleet_size=fleet_size, duration=duration, seed=seed
    )


#: Event mix of the streaming replay workload: several staggered gatherings
#: (so crowds freeze at different frontiers), churny transients and platoons.
STREAMING_PROFILE = ScenarioProfile(
    gatherings=3,
    transients=2,
    platoons=2,
    gathering_duration=30,
)


def streaming_scenario(
    fleet_size: int = 200, duration: int = 80, seed: int = 51
) -> SimulationResult:
    """A fleet slice shaped for streaming replays (staggered group events).

    Use :func:`arrival_stream` on the resulting database to turn it into an
    arrival-ordered point feed (optionally with reordering and late points)
    for :class:`~repro.stream.StreamingGatheringService`.
    """
    return build_scenario(
        STREAMING_PROFILE, fleet_size=fleet_size, duration=duration, seed=seed
    )


def arrival_stream(
    database,
    jitter: float = 0.0,
    late_fraction: float = 0.0,
    late_delay: float = 15.0,
    seed: int = 0,
) -> List[tuple]:
    """Arrival-ordered ``(object_id, t, x, y)`` feed of a trajectory database.

    The baseline order is by sample timestamp (ties by object id) — a
    perfectly in-order feed.  Two kinds of transport imperfection can be
    layered on top, both deterministic in ``seed``:

    * ``jitter`` delays each fix's *arrival* by ``U(0, jitter)`` time units,
      shuffling points that lie within the jitter horizon of each other —
      absorbed losslessly by the service's ``slack`` knob;
    * ``late_fraction`` of fixes additionally arrive ``late_delay`` time
      units after their event time — typically behind the mined frontier, so
      they exercise the service's late-point policy.

    The fixes' event timestamps are never altered, only their order.
    """
    if jitter < 0:
        raise ValueError("jitter must be non-negative")
    if not 0.0 <= late_fraction <= 1.0:
        raise ValueError("late_fraction must be within [0, 1]")
    if late_delay < 0:
        raise ValueError("late_delay must be non-negative")
    rng = np.random.default_rng(seed)
    points = []
    for trajectory in database:
        for t, point in trajectory:
            points.append((trajectory.object_id, t, point.x, point.y))
    points.sort(key=lambda row: (row[1], row[0]))

    arrivals = np.asarray([row[1] for row in points], dtype=float)
    if jitter > 0:
        arrivals = arrivals + rng.uniform(0.0, jitter, size=len(points))
    if late_fraction > 0 and len(points):
        late = rng.random(len(points)) < late_fraction
        arrivals = arrivals + np.where(late, late_delay, 0.0)
    order = np.argsort(arrivals, kind="stable")
    return [points[int(i)] for i in order]


def city_scenario(
    fleet_size: int = 560,
    duration: int = 120,
    districts: int = 4,
    seed: int = 97,
    network: Optional[RoadNetwork] = None,
) -> SimulationResult:
    """A multi-region "city" workload sized for the sharded batch driver.

    The city is a large road grid divided into ``districts`` regions laid
    out on a square; every district hosts its own event mix:

    * two *staggered* gathering events — one in the first half of the day,
      one in the second — so crowds begin and end at different times and
      several of them span any contiguous partition of the snapshot range
      (the cross-boundary crowds shard stitching exists for);
    * one transient drop-off crowd;
    * a travelling platoon headed to the next district over, putting
      inter-region traffic on the roads between events.

    With the default sizes the scenario spans ~120 snapshots over hundreds
    of objects — long enough that ``repro mine --shards N`` has real
    per-shard work — while every district keeps mining activity spatially
    separable for region queries against the pattern store.
    """
    if districts < 1:
        raise ValueError("districts must be at least 1")
    network = network or RoadNetwork(rows=24, cols=24, block_size=500.0)
    rng = np.random.default_rng(seed)
    simulator = TaxiFleetSimulator(network=network, seed=seed)

    side = int(np.ceil(np.sqrt(districts)))
    centers: List[Point] = []
    for district in range(districts):
        row, col = divmod(district, side)
        centers.append(
            Point(
                (col + 0.5 + float(rng.uniform(-0.15, 0.15))) / side * network.width,
                (row + 0.5 + float(rng.uniform(-0.15, 0.15))) / side * network.height,
            )
        )

    span = max(duration // 3, 8)
    gathering_events: List[GatheringEvent] = []
    transient_events: List[TransientCrowdEvent] = []
    traveling_groups: List[TravelingGroupEvent] = []
    for district, center in enumerate(centers):
        early = int(rng.integers(4, max(5, duration // 6)))
        late = int(rng.integers(duration // 2, max(duration // 2 + 1, duration - span - 4)))
        for start in (early, late):
            gathering_events.append(
                GatheringEvent(
                    center=center,
                    start=start,
                    end=min(start + span, duration - 2),
                    participants=16,
                )
            )
        transient_start = int(rng.integers(5, max(6, duration - 24)))
        transient_events.append(
            TransientCrowdEvent(
                center=Point(
                    center.x + float(rng.uniform(-600.0, 600.0)),
                    center.y + float(rng.uniform(-600.0, 600.0)),
                ),
                start=transient_start,
                end=min(transient_start + 20, duration - 2),
                concurrent=6,
                dwell=3,
            )
        )
        traveling_groups.append(
            TravelingGroupEvent(
                origin=center,
                destination=centers[(district + 1) % len(centers)],
                start=int(rng.integers(0, max(1, duration // 3))),
                size=12,
            )
        )

    config = SimulationConfig(fleet_size=fleet_size, duration=duration)
    return simulator.simulate(
        config,
        gathering_events=gathering_events,
        transient_events=transient_events,
        traveling_groups=traveling_groups,
    )


def metro_scenario(
    fleet_size: int = 5000,
    duration: int = 150,
    districts: int = 9,
    seed: int = 101,
    network: Optional[RoadNetwork] = None,
) -> SimulationResult:
    """A metropolis-scale workload sized to stress phase-1 clustering.

    Same event grammar as :func:`city_scenario` — staggered gatherings,
    transient drop-offs and inter-district platoons per district — but on a
    much larger road grid with a fleet an order of magnitude bigger (the
    defaults put ≥5k objects on ≥150 snapshots, ~750k interpolated
    positions per full pass).  At this size snapshot clustering dominates
    the pipeline, which makes the batched whole-database phase 1 visible in
    the tracked benchmark trajectory: the per-snapshot scalar loop pays its
    per-call overhead 150 times, the arena path amortises it into a handful
    of columnar sweeps.
    """
    network = network or RoadNetwork(rows=36, cols=36, block_size=500.0)
    return city_scenario(
        fleet_size=fleet_size,
        duration=duration,
        districts=districts,
        seed=seed,
        network=network,
    )


def megacity_scenario(
    fleet_size: int = 100_000,
    duration: int = 60,
    districts: int = 16,
    seed: int = 211,
    participants: int = 40,
    extent: float = 120_000.0,
) -> SimulationResult:
    """A ≥100k-object workload sized for the out-of-core phase-1 path.

    The road-walking :class:`~repro.datagen.simulator.TaxiFleetSimulator`
    steps every taxi at every timestamp, which is both too slow and too
    sample-dense at this scale — 100k objects with per-step samples would
    make the *input* database as heavy as the arena it feeds.  This
    generator instead exploits the linear-interpolation model directly:

    * **Background traffic** gets four waypoint samples per object
      (endpoints pinned to the time domain, two interior instants drawn
      off-grid), so each object spans every snapshot while the input stays
      at ~4 samples/object.  The interpolated arena is the big artifact —
      ``fleet_size × duration`` rows — exactly the thing the spilled
      :class:`~repro.engine.arena.ArenaSpool` exists to keep out of RAM.
    * **Events**: each of ``districts`` city districts hosts one durable
      gathering — ``participants`` objects converge on the district
      centre, park inside an 80 m disc for ~``duration // 3`` snapshots
      (two identical samples bracket the dwell, so interpolation holds
      them exactly still) and disperse after.
    * The city ``extent`` keeps background density low enough (about
      7 objects/km²) that DBSCAN at the paper's ``eps=200 m`` sees mostly
      noise plus the engineered events, rather than one giant component.

    All coordinates are drawn vectorized; only the final
    :class:`~repro.trajectory.trajectory.Trajectory` assembly loops over
    objects.  Returns a :class:`~repro.datagen.simulator.SimulationResult`
    whose ``event_members`` maps each district event to its participant
    ids, like the simulator-backed scenarios.
    """
    if fleet_size < districts * participants + 1:
        raise ValueError("fleet too small to host the district events")
    if duration < 12:
        raise ValueError("duration must cover at least 12 snapshots")
    rng = np.random.default_rng(seed)
    last = float(duration - 1)

    # District centres on a jittered sub-grid of the central city.
    side = int(np.ceil(np.sqrt(districts)))
    cell = extent / (side + 1)
    centers_x = np.empty(districts)
    centers_y = np.empty(districts)
    for district in range(districts):
        row, col = divmod(district, side)
        centers_x[district] = (col + 1.0) * cell + float(rng.uniform(-0.1, 0.1)) * cell
        centers_y[district] = (row + 1.0) * cell + float(rng.uniform(-0.1, 0.1)) * cell

    database = TrajectoryDatabase()
    gathering_events: List[GatheringEvent] = []
    event_members: Dict[int, Set[int]] = {}
    span = max(duration // 3, 10)
    object_id = 0
    for district in range(districts):
        center = Point(float(centers_x[district]), float(centers_y[district]))
        start = 3 + (district * 5) % max(1, duration - span - 6)
        end = min(start + span, duration - 3)
        gathering_events.append(
            GatheringEvent(
                center=center, start=start, end=end, participants=participants
            )
        )
        # Parked offsets inside an 80 m disc: everything mutually within
        # the paper's eps, so each event snapshot is one dense cluster.
        angle = rng.uniform(0.0, 2.0 * np.pi, size=participants)
        radius = 80.0 * np.sqrt(rng.uniform(0.0, 1.0, size=participants))
        park_x = centers_x[district] + radius * np.cos(angle)
        park_y = centers_y[district] + radius * np.sin(angle)
        approach = rng.uniform(0.0, extent, size=(participants, 2))
        depart = rng.uniform(0.0, extent, size=(participants, 2))
        members = set()
        for i in range(participants):
            parked = Point(float(park_x[i]), float(park_y[i]))
            database.add(
                Trajectory(
                    object_id=object_id,
                    samples=[
                        (0.0, Point(float(approach[i, 0]), float(approach[i, 1]))),
                        (float(start), parked),
                        (float(end), parked),
                        (last, Point(float(depart[i, 0]), float(depart[i, 1]))),
                    ],
                )
            )
            members.add(object_id)
            object_id += 1
        event_members[district] = members

    # Background traffic: four waypoints per object, endpoints pinned to
    # the full time domain, interior instants off the snapshot grid.
    background = fleet_size - object_id
    waypoints = rng.uniform(0.0, extent, size=(background, 4, 2))
    interior = np.sort(rng.uniform(0.5, last - 0.5, size=(background, 2)), axis=1)
    for i in range(background):
        t1, t2 = float(interior[i, 0]), float(interior[i, 1])
        database.add(
            Trajectory(
                object_id=object_id,
                samples=[
                    (0.0, Point(float(waypoints[i, 0, 0]), float(waypoints[i, 0, 1]))),
                    (t1, Point(float(waypoints[i, 1, 0]), float(waypoints[i, 1, 1]))),
                    (t2, Point(float(waypoints[i, 2, 0]), float(waypoints[i, 2, 1]))),
                    (last, Point(float(waypoints[i, 3, 0]), float(waypoints[i, 3, 1]))),
                ],
            )
        )
        object_id += 1

    config = SimulationConfig(fleet_size=fleet_size, duration=duration)
    return SimulationResult(
        database=database,
        config=config,
        gathering_events=gathering_events,
        event_members=event_members,
    )


def efficiency_scenario(
    fleet_size: int = 200,
    duration: int = 60,
    gatherings: int = 3,
    seed: int = 43,
) -> SimulationResult:
    """A balanced workload for the crowd-discovery runtime study (Figure 6)."""
    profile = ScenarioProfile(
        gatherings=gatherings,
        transients=2,
        platoons=2,
        gathering_duration=max(20, duration // 2),
    )
    return build_scenario(profile, fleet_size=fleet_size, duration=duration, seed=seed)
