"""Synthetic taxi-fleet data generator (substitute for the Beijing T-Drive logs)."""

from .road_network import RoadNetwork
from .events import GatheringEvent, TransientCrowdEvent, TravelingGroupEvent
from .simulator import SimulationConfig, SimulationResult, TaxiFleetSimulator
from .synthetic import random_snapshot_cluster, synthetic_cluster_database, synthetic_crowd
from .scenarios import (
    ScenarioProfile,
    TIME_OF_DAY_PROFILES,
    WEATHER_PROFILES,
    build_scenario,
    efficiency_scenario,
    time_of_day_scenario,
    weather_scenario,
)

__all__ = [
    "RoadNetwork",
    "GatheringEvent",
    "TransientCrowdEvent",
    "TravelingGroupEvent",
    "SimulationConfig",
    "SimulationResult",
    "TaxiFleetSimulator",
    "random_snapshot_cluster",
    "synthetic_cluster_database",
    "synthetic_crowd",
    "ScenarioProfile",
    "TIME_OF_DAY_PROFILES",
    "WEATHER_PROFILES",
    "build_scenario",
    "efficiency_scenario",
    "time_of_day_scenario",
    "weather_scenario",
]
