"""Synthetic taxi-fleet data generator (substitute for the Beijing T-Drive logs)."""

from .road_network import RoadNetwork
from .events import GatheringEvent, TransientCrowdEvent, TravelingGroupEvent
from .simulator import SimulationConfig, SimulationResult, TaxiFleetSimulator
from .synthetic import random_snapshot_cluster, synthetic_cluster_database, synthetic_crowd
from .scenarios import (
    ScenarioProfile,
    STREAMING_PROFILE,
    TIME_OF_DAY_PROFILES,
    WEATHER_PROFILES,
    arrival_stream,
    build_scenario,
    efficiency_scenario,
    streaming_scenario,
    time_of_day_scenario,
    weather_scenario,
)

__all__ = [
    "RoadNetwork",
    "GatheringEvent",
    "TransientCrowdEvent",
    "TravelingGroupEvent",
    "SimulationConfig",
    "SimulationResult",
    "TaxiFleetSimulator",
    "random_snapshot_cluster",
    "synthetic_cluster_database",
    "synthetic_crowd",
    "ScenarioProfile",
    "STREAMING_PROFILE",
    "TIME_OF_DAY_PROFILES",
    "WEATHER_PROFILES",
    "arrival_stream",
    "build_scenario",
    "efficiency_scenario",
    "streaming_scenario",
    "time_of_day_scenario",
    "weather_scenario",
]
