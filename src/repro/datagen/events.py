"""Group-event specifications injected into the synthetic fleet.

Two kinds of events mirror the phenomena the paper's effectiveness study
discusses:

* :class:`GatheringEvent` — a durable congregation (traffic jam, celebration)
  with *committed* participants that dwell at the event area long enough to
  become participators.  These should be recovered as gatherings.
* :class:`TransientCrowdEvent` — a drop-off area (restaurant, mall) where
  vehicles keep arriving and leaving quickly.  The area stays dense, so it
  forms crowds, but no vehicle stays long enough to be a participator —
  exactly the crowd-but-not-gathering gap seen in casual time and snowy days.
* :class:`TravelingGroupEvent` — a platoon of vehicles sharing a route (e.g.
  commuters heading to the same business district).  These produce flocks,
  convoys and swarms but usually no gathering, because the platoon keeps
  moving instead of dwelling in a stable area.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..geometry.point import Point

__all__ = ["GatheringEvent", "TransientCrowdEvent", "TravelingGroupEvent"]


@dataclass(frozen=True)
class GatheringEvent:
    """A durable group event with committed participants.

    Attributes
    ----------
    center:
        Location of the event in metres.
    start, end:
        Time interval (in timestamps) during which the event is active.
    participants:
        Number of vehicles committed to the event.
    radius:
        Spatial spread of the dwelling vehicles around the centre.
    churn:
        Fraction of participants swapped for fresh ones per timestamp
        (members can come and go, but most commit for a long stretch).
    """

    center: Point
    start: int
    end: int
    participants: int
    radius: float = 100.0
    churn: float = 0.05

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError("event must end after it starts")
        if self.participants < 1:
            raise ValueError("an event needs at least one participant")
        if not 0.0 <= self.churn <= 1.0:
            raise ValueError("churn must be within [0, 1]")

    @property
    def duration(self) -> int:
        return self.end - self.start


@dataclass(frozen=True)
class TravelingGroupEvent:
    """A platoon of vehicles travelling together between two locations.

    Attributes
    ----------
    origin, destination:
        Endpoints of the shared route (snapped to the road network).
    start:
        Departure timestamp.
    size:
        Number of vehicles in the platoon.
    spread:
        Lateral jitter (metres) applied to each member around the platoon head.
    speed_factor:
        Multiplier on the fleet cruise speed (platoons in heavy weather crawl).
    disperse_every:
        If set, every ``disperse_every`` timestamps the platoon briefly spreads
        out far beyond clustering range before regrouping.  This breaks the
        *consecutive* grouping that convoys need while leaving swarms (which
        tolerate gaps) intact — the behaviour the paper observes in snowy
        weather.
    """

    origin: Point
    destination: Point
    start: int
    size: int
    spread: float = 80.0
    speed_factor: float = 1.0
    disperse_every: Optional[int] = None

    def __post_init__(self) -> None:
        if self.size < 1:
            raise ValueError("a travelling group needs at least one vehicle")
        if self.spread < 0:
            raise ValueError("spread must be non-negative")
        if self.speed_factor <= 0:
            raise ValueError("speed_factor must be positive")
        if self.disperse_every is not None and self.disperse_every < 2:
            raise ValueError("disperse_every must be at least 2 when set")


@dataclass(frozen=True)
class TransientCrowdEvent:
    """A dense area with fast membership turnover (crowd but not gathering).

    Attributes
    ----------
    center:
        Location of the drop-off area.
    start, end:
        Active interval (timestamps).
    concurrent:
        Number of vehicles present at any instant.
    dwell:
        How many timestamps each vehicle stays before leaving.
    radius:
        Spatial spread of the vehicles around the centre.
    """

    center: Point
    start: int
    end: int
    concurrent: int
    dwell: int = 3
    radius: float = 120.0

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError("event must end after it starts")
        if self.concurrent < 1:
            raise ValueError("an event needs at least one concurrent vehicle")
        if self.dwell < 1:
            raise ValueError("dwell must be at least one timestamp")

    @property
    def duration(self) -> int:
        return self.end - self.start
