"""Cluster-level synthetic workloads.

The efficiency study of the paper (Figures 7 and 8b) operates directly on
*closed crowds* — sequences of snapshot clusters — rather than on raw
trajectories.  The generators here build such crowds with controlled
membership structure so that gathering-detection and gathering-update
benchmarks can sweep crowd length, participator commitment and membership
churn without paying for a full fleet simulation.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..clustering.snapshot import ClusterDatabase, SnapshotCluster
from ..core.crowd import Crowd
from ..geometry.point import Point

__all__ = ["synthetic_crowd", "synthetic_cluster_database", "random_snapshot_cluster"]


def random_snapshot_cluster(
    timestamp: float,
    object_ids: Sequence[int],
    center: Tuple[float, float],
    spread: float,
    rng: np.random.Generator,
    cluster_id: int = 0,
) -> SnapshotCluster:
    """A snapshot cluster with the given members scattered around a centre."""
    if not object_ids:
        raise ValueError("a snapshot cluster needs at least one member")
    members: Dict[int, Point] = {}
    for oid in object_ids:
        members[oid] = Point(
            center[0] + float(rng.normal(0.0, spread)),
            center[1] + float(rng.normal(0.0, spread)),
        )
    return SnapshotCluster(timestamp=timestamp, members=members, cluster_id=cluster_id)


def synthetic_crowd(
    length: int,
    committed: int,
    casual: int,
    presence_probability: float = 0.85,
    casual_presence: float = 0.3,
    spread: float = 50.0,
    drift: float = 20.0,
    seed: int = 11,
    start_time: float = 0.0,
) -> Crowd:
    """Build a crowd with controlled membership structure.

    Parameters
    ----------
    length:
        Number of snapshot clusters (``Cr.tau``).
    committed:
        Objects that appear in most clusters (future participators).
    casual:
        Objects that only drop in occasionally (crowd padding).
    presence_probability:
        Per-timestamp probability that a committed object is present.
    casual_presence:
        Per-timestamp probability that a casual object is present.
    spread:
        Spatial spread of members around the crowd centre.
    drift:
        Per-timestamp drift of the crowd centre (kept small so that
        consecutive clusters stay within any reasonable ``delta``).
    """
    if length < 1:
        raise ValueError("length must be at least 1")
    if committed < 1:
        raise ValueError("a crowd needs at least one committed object")
    rng = np.random.default_rng(seed)
    committed_ids = list(range(committed))
    casual_ids = list(range(committed, committed + casual))

    clusters: List[SnapshotCluster] = []
    cx, cy = 0.0, 0.0
    for index in range(length):
        present = [
            oid for oid in committed_ids if rng.random() < presence_probability
        ]
        present += [oid for oid in casual_ids if rng.random() < casual_presence]
        if not present:
            present = [committed_ids[0]]
        clusters.append(
            random_snapshot_cluster(
                timestamp=start_time + index,
                object_ids=present,
                center=(cx, cy),
                spread=spread,
                rng=rng,
                cluster_id=0,
            )
        )
        cx += float(rng.normal(0.0, drift))
        cy += float(rng.normal(0.0, drift))
    return Crowd(tuple(clusters))


def synthetic_cluster_database(
    timestamps: int,
    clusters_per_timestamp: int,
    members_per_cluster: int,
    area: float = 10000.0,
    spread: float = 60.0,
    chain_fraction: float = 0.5,
    drift: float = 40.0,
    seed: int = 13,
    start_time: float = 0.0,
) -> ClusterDatabase:
    """A cluster database mixing persistent chains and one-off clusters.

    A ``chain_fraction`` of the clusters at each timestamp continue a chain
    from the previous timestamp (small centre drift, same member pool), so
    crowd discovery has real work to do; the rest are placed at random
    locations with random members.
    """
    if timestamps < 1 or clusters_per_timestamp < 1 or members_per_cluster < 1:
        raise ValueError("all sizes must be at least 1")
    rng = np.random.default_rng(seed)
    cdb = ClusterDatabase()
    chain_count = max(1, int(clusters_per_timestamp * chain_fraction))
    chain_centers = [
        (float(rng.uniform(0.0, area)), float(rng.uniform(0.0, area)))
        for _ in range(chain_count)
    ]
    chain_members = [
        list(
            range(
                chain * members_per_cluster,
                (chain + 1) * members_per_cluster,
            )
        )
        for chain in range(chain_count)
    ]
    free_id_start = chain_count * members_per_cluster

    for index in range(timestamps):
        t = start_time + index
        clusters: List[SnapshotCluster] = []
        for chain in range(chain_count):
            cx, cy = chain_centers[chain]
            clusters.append(
                random_snapshot_cluster(
                    timestamp=t,
                    object_ids=chain_members[chain],
                    center=(cx, cy),
                    spread=spread,
                    rng=rng,
                    cluster_id=chain,
                )
            )
            chain_centers[chain] = (
                cx + float(rng.normal(0.0, drift)),
                cy + float(rng.normal(0.0, drift)),
            )
        for extra in range(chain_count, clusters_per_timestamp):
            members = [
                free_id_start + int(rng.integers(0, 10 * members_per_cluster))
                for _ in range(members_per_cluster)
            ]
            clusters.append(
                random_snapshot_cluster(
                    timestamp=t,
                    object_ids=sorted(set(members)) or [free_id_start],
                    center=(float(rng.uniform(0.0, area)), float(rng.uniform(0.0, area))),
                    spread=spread,
                    rng=rng,
                    cluster_id=extra,
                )
            )
        cdb.add_snapshot(t, clusters)
    return cdb
