"""Synthetic taxi-fleet simulator.

The simulator drives a fleet of taxis over a :class:`~repro.datagen.road_network.RoadNetwork`
and overlays the group events of :mod:`repro.datagen.events`:

* background taxis perform random trips between intersections,
* gathering-event participants drive to the event area and dwell there (with
  a small membership churn),
* transient-crowd vehicles visit a drop-off area for a couple of timestamps
  and move on,
* travelling groups follow a shared route as a platoon.

The output is a regular :class:`~repro.trajectory.TrajectoryDatabase`, so the
mining pipeline sees exactly the same data model it would see for real GPS
logs.  All randomness flows through one ``numpy`` generator seeded by the
caller, making every scenario reproducible.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..geometry.point import Point
from ..trajectory.trajectory import Trajectory, TrajectoryDatabase
from .events import GatheringEvent, TransientCrowdEvent, TravelingGroupEvent
from .road_network import RoadNetwork

__all__ = ["SimulationConfig", "SimulationResult", "TaxiFleetSimulator"]


@dataclass(frozen=True)
class SimulationConfig:
    """Knobs of one simulation run."""

    fleet_size: int = 200
    duration: int = 120
    time_step: float = 1.0
    cruise_speed: float = 600.0
    speed_jitter: float = 0.2
    drop_rate: float = 0.0
    start_time: float = 0.0

    def __post_init__(self) -> None:
        if self.fleet_size < 1:
            raise ValueError("fleet_size must be at least 1")
        if self.duration < 2:
            raise ValueError("duration must cover at least two timestamps")
        if self.time_step <= 0:
            raise ValueError("time_step must be positive")
        if self.cruise_speed <= 0:
            raise ValueError("cruise_speed must be positive")
        if not 0.0 <= self.drop_rate < 1.0:
            raise ValueError("drop_rate must be in [0, 1)")


@dataclass
class SimulationResult:
    """A generated database plus the ground truth that produced it."""

    database: TrajectoryDatabase
    config: SimulationConfig
    gathering_events: List[GatheringEvent] = field(default_factory=list)
    transient_events: List[TransientCrowdEvent] = field(default_factory=list)
    traveling_groups: List[TravelingGroupEvent] = field(default_factory=list)
    event_members: Dict[int, Set[int]] = field(default_factory=dict)

    def timestamps(self) -> List[float]:
        return [
            self.config.start_time + i * self.config.time_step
            for i in range(self.config.duration)
        ]


class _BackgroundDriver:
    """Random-trip movement state for one background taxi."""

    def __init__(self, network: RoadNetwork, rng: np.random.Generator) -> None:
        self.network = network
        origin = network.random_node(rng)
        destination = network.random_node(rng)
        self.path = network.shortest_path(origin, destination)
        self.offset = float(rng.uniform(0.0, max(network.path_length(self.path), 1.0)))

    def step(self, distance: float, rng: np.random.Generator) -> Point:
        point, self.offset = self.network.walk(self.path, self.offset, distance)
        if self.offset >= self.network.path_length(self.path) - 1e-6:
            start = self.path[-1]
            destination = self.network.random_node(rng)
            if destination == start:
                destination = self.network.random_node(rng)
            self.path = self.network.shortest_path(start, destination)
            self.offset = 0.0
        return point


class TaxiFleetSimulator:
    """Generates trajectory databases with injected group events."""

    #: Each transient-crowd event rotates through a pool this many times larger
    #: than its concurrency, so no vehicle revisits the area often enough to
    #: become a participator (the drop-off areas must stay crowds, not
    #: gatherings).
    _TRANSIENT_POOL_FACTOR = 5

    def __init__(self, network: Optional[RoadNetwork] = None, seed: int = 7) -> None:
        self.network = network or RoadNetwork()
        self.seed = seed

    # -- public API -------------------------------------------------------------
    def simulate(
        self,
        config: SimulationConfig,
        gathering_events: Sequence[GatheringEvent] = (),
        transient_events: Sequence[TransientCrowdEvent] = (),
        traveling_groups: Sequence[TravelingGroupEvent] = (),
    ) -> SimulationResult:
        """Run one simulation and return the database plus ground truth."""
        rng = np.random.default_rng(self.seed)
        n = config.fleet_size
        duration = config.duration

        # Assign taxis to roles.  Events own disjoint slices of the fleet so a
        # taxi's behaviour is unambiguous; everything left over is background.
        assignments = self._assign_fleet(
            n, gathering_events, transient_events, traveling_groups
        )
        positions = np.zeros((n, duration, 2), dtype=float)
        observed = np.ones((n, duration), dtype=bool)

        background_ids = assignments["background"]
        drivers = {oid: _BackgroundDriver(self.network, rng) for oid in background_ids}
        for t in range(duration):
            step_distance = config.cruise_speed * config.time_step
            for oid in background_ids:
                jitter = 1.0 + rng.uniform(-config.speed_jitter, config.speed_jitter)
                point = drivers[oid].step(step_distance * jitter, rng)
                positions[oid, t] = (point.x, point.y)

        event_members: Dict[int, Set[int]] = {}
        for event_index, (event, members) in enumerate(
            zip(gathering_events, assignments["gathering"])
        ):
            self._simulate_gathering(event, members, positions, config, rng)
            event_members[event_index] = set(members)

        for event, members in zip(transient_events, assignments["transient"]):
            self._simulate_transient(event, members, positions, config, rng)

        for group, members in zip(traveling_groups, assignments["traveling"]):
            self._simulate_traveling_group(group, members, positions, config, rng)

        if config.drop_rate > 0.0:
            observed &= rng.random((n, duration)) >= config.drop_rate
            # Keep the first and last samples so lifespans stay intact.
            observed[:, 0] = True
            observed[:, -1] = True

        database = self._to_database(positions, observed, config)
        return SimulationResult(
            database=database,
            config=config,
            gathering_events=list(gathering_events),
            transient_events=list(transient_events),
            traveling_groups=list(traveling_groups),
            event_members=event_members,
        )

    # -- fleet assignment -----------------------------------------------------------
    def _assign_fleet(
        self,
        fleet_size: int,
        gathering_events: Sequence[GatheringEvent],
        transient_events: Sequence[TransientCrowdEvent],
        traveling_groups: Sequence[TravelingGroupEvent],
    ) -> Dict[str, list]:
        needed = (
            sum(e.participants for e in gathering_events)
            + sum(e.concurrent * self._TRANSIENT_POOL_FACTOR for e in transient_events)
            + sum(g.size for g in traveling_groups)
        )
        if needed > fleet_size:
            raise ValueError(
                f"fleet of {fleet_size} taxis cannot host events needing {needed}"
            )
        cursor = 0
        gathering_slices = []
        for event in gathering_events:
            gathering_slices.append(list(range(cursor, cursor + event.participants)))
            cursor += event.participants
        transient_slices = []
        for event in transient_events:
            pool = event.concurrent * self._TRANSIENT_POOL_FACTOR
            transient_slices.append(list(range(cursor, cursor + pool)))
            cursor += pool
        traveling_slices = []
        for group in traveling_groups:
            traveling_slices.append(list(range(cursor, cursor + group.size)))
            cursor += group.size
        background = list(range(cursor, fleet_size))
        return {
            "gathering": gathering_slices,
            "transient": transient_slices,
            "traveling": traveling_slices,
            "background": background,
        }

    # -- event dynamics ----------------------------------------------------------------
    def _dwell_position(
        self, center: Point, radius: float, rng: np.random.Generator
    ) -> Tuple[float, float]:
        angle = rng.uniform(0.0, 2.0 * math.pi)
        distance = radius * math.sqrt(rng.uniform(0.0, 1.0))
        return (center.x + distance * math.cos(angle), center.y + distance * math.sin(angle))

    def _simulate_gathering(
        self,
        event: GatheringEvent,
        members: Sequence[int],
        positions: np.ndarray,
        config: SimulationConfig,
        rng: np.random.Generator,
    ) -> None:
        duration = config.duration
        start = max(event.start, 0)
        end = min(event.end, duration)
        event_span = max(end - start, 1)
        # Each member gets an anchor spot it drifts around while dwelling.
        anchors = {oid: self._dwell_position(event.center, event.radius, rng) for oid in members}
        # Membership is staggered: every participant commits to one long
        # contiguous dwell window (just under half of the event), and the
        # windows are spread across the event so vehicles keep arriving and
        # leaving while the congregation as a whole persists.  This mirrors a
        # real traffic jam: no fixed sub-fleet spans enough consecutive time
        # to register as a convoy or swarm, yet every vehicle stays long
        # enough to be a participator.  ``churn`` shortens the windows
        # further.
        window_length = max(2, int(event_span * max(0.3, 0.45 - event.churn)))
        windows: Dict[int, Tuple[int, int]] = {}
        slack = max(event_span - window_length, 0)
        for rank, oid in enumerate(sorted(members)):
            if len(members) > 1:
                offset = int(round(slack * rank / (len(members) - 1)))
            else:
                offset = 0
            offset += int(rng.integers(-1, 2))
            offset = min(max(offset, 0), slack)
            windows[oid] = (start + offset, start + offset + window_length)
        for t in range(duration):
            for oid in members:
                ax, ay = anchors[oid]
                w_start, w_end = windows[oid]
                if w_start <= t < w_end:
                    positions[oid, t] = (
                        ax + rng.normal(0.0, event.radius * 0.1),
                        ay + rng.normal(0.0, event.radius * 0.1),
                    )
                else:
                    # Outside its dwell window the vehicle approaches or
                    # leaves: the farther from the window, the farther away.
                    positions[oid, t] = self._approach_position(
                        event, t, w_start, w_end, anchors[oid], config, rng
                    )

    def _approach_position(
        self,
        event: GatheringEvent,
        t: int,
        start: int,
        end: int,
        anchor: Tuple[float, float],
        config: SimulationConfig,
        rng: np.random.Generator,
    ) -> Tuple[float, float]:
        """Position of a member before/after its dwell window.

        The vehicle is kept well clear of the congregation (at least a couple
        of kilometres) so that arrivals and departures only change the
        cluster's membership, never smear its geometry: the Hausdorff
        distance between consecutive snapshot clusters of the event stays
        bounded by the dwell radius, as the crowd definition requires.
        """
        speed = config.cruise_speed * config.time_step
        if t < start:
            lead = start - t
        else:
            lead = t - end + 1
        distance = 2000.0 + speed * lead
        angle = rng.uniform(0.0, 2.0 * math.pi)
        return (
            anchor[0] + distance * math.cos(angle),
            anchor[1] + distance * math.sin(angle),
        )

    def _simulate_transient(
        self,
        event: TransientCrowdEvent,
        members: Sequence[int],
        positions: np.ndarray,
        config: SimulationConfig,
        rng: np.random.Generator,
    ) -> None:
        duration = config.duration
        start = max(event.start, 0)
        end = min(event.end, duration)
        pool = list(members)
        if not pool:
            return
        # Rotate through the pool: each vehicle dwells for `dwell` steps, then
        # the next batch takes over, so the area stays dense with no commitment.
        for t in range(duration):
            if start <= t < end:
                wave = (t - start) // event.dwell
                present = [
                    pool[(wave * event.concurrent + slot) % len(pool)]
                    for slot in range(min(event.concurrent, len(pool)))
                ]
            else:
                present = []
            present_set = set(present)
            for oid in pool:
                if oid in present_set:
                    x, y = self._dwell_position(event.center, event.radius, rng)
                    positions[oid, t] = (x, y)
                else:
                    # Off-site, roaming a ring around the venue.
                    angle = rng.uniform(0.0, 2.0 * math.pi)
                    ring = rng.uniform(1500.0, 4000.0)
                    positions[oid, t] = (
                        event.center.x + ring * math.cos(angle),
                        event.center.y + ring * math.sin(angle),
                    )

    def _simulate_traveling_group(
        self,
        group: TravelingGroupEvent,
        members: Sequence[int],
        positions: np.ndarray,
        config: SimulationConfig,
        rng: np.random.Generator,
    ) -> None:
        duration = config.duration
        origin_node = self.network.nearest_node(group.origin)
        destination_node = self.network.nearest_node(group.destination)
        path = self.network.shortest_path(origin_node, destination_node)
        path_length = self.network.path_length(path)
        speed = config.cruise_speed * config.time_step * group.speed_factor
        # Per-member lateral offsets keep the platoon loosely spread.
        offsets = {
            oid: (rng.normal(0.0, group.spread), rng.normal(0.0, group.spread))
            for oid in members
        }
        for t in range(duration):
            if t < group.start:
                travelled = 0.0
            else:
                travelled = min(speed * (t - group.start), path_length)
            head, _ = self.network.walk(path, 0.0, travelled)
            arrived = travelled >= path_length and t > group.start
            if arrived:
                # After arrival the platoon breaks up: members scatter away
                # from the destination so a parked platoon does not register
                # as a stationary gathering.
                steps_since_arrival = t - group.start - int(path_length / max(speed, 1e-9))
                for oid in members:
                    dx, dy = offsets[oid]
                    scatter = (steps_since_arrival + 1) * speed * 0.8
                    angle = rng.uniform(0.0, 2.0 * math.pi)
                    positions[oid, t] = (
                        head.x + dx + scatter * math.cos(angle),
                        head.y + dy + scatter * math.sin(angle),
                    )
                continue
            dispersing = (
                group.disperse_every is not None
                and t >= group.start
                and (t - group.start) % group.disperse_every == 0
            )
            for oid in members:
                dx, dy = offsets[oid]
                if dispersing:
                    # Briefly spread far apart: breaks consecutive grouping
                    # (convoys) but not gap-tolerant grouping (swarms).
                    angle = rng.uniform(0.0, 2.0 * math.pi)
                    far = rng.uniform(1200.0, 2000.0)
                    positions[oid, t] = (
                        head.x + far * math.cos(angle),
                        head.y + far * math.sin(angle),
                    )
                else:
                    positions[oid, t] = (head.x + dx, head.y + dy)

    # -- output ----------------------------------------------------------------------------
    def _to_database(
        self, positions: np.ndarray, observed: np.ndarray, config: SimulationConfig
    ) -> TrajectoryDatabase:
        database = TrajectoryDatabase()
        n, duration, _ = positions.shape
        for oid in range(n):
            samples = []
            for t in range(duration):
                if not observed[oid, t]:
                    continue
                timestamp = config.start_time + t * config.time_step
                x, y = positions[oid, t]
                samples.append((timestamp, Point(float(x), float(y))))
            if samples:
                database.add(Trajectory(object_id=oid, samples=samples))
        return database
