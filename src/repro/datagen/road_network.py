"""A Manhattan-style road network for the synthetic taxi fleet.

The paper's evaluation uses GPS logs of Beijing taxis.  Since that dataset is
proprietary, the generator drives a synthetic fleet over a simple grid road
network: intersections form a regular lattice and road segments connect
4-neighbouring intersections.  Shortest paths between intersections are
computed with ``networkx`` and cached, so routing thousands of trips stays
cheap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import networkx as nx

from ..geometry.point import Point

__all__ = ["RoadNetwork"]

NodeId = Tuple[int, int]


@dataclass(frozen=True)
class _NetworkSpec:
    rows: int
    cols: int
    block_size: float


class RoadNetwork:
    """A grid of intersections spaced ``block_size`` metres apart."""

    def __init__(self, rows: int = 20, cols: int = 20, block_size: float = 500.0) -> None:
        if rows < 2 or cols < 2:
            raise ValueError("the road network needs at least a 2x2 grid")
        if block_size <= 0:
            raise ValueError("block_size must be positive")
        self.spec = _NetworkSpec(rows=rows, cols=cols, block_size=block_size)
        self.graph = nx.Graph()
        for r in range(rows):
            for c in range(cols):
                self.graph.add_node((r, c), pos=self.node_position((r, c)))
        for r in range(rows):
            for c in range(cols):
                if r + 1 < rows:
                    self.graph.add_edge((r, c), (r + 1, c), weight=block_size)
                if c + 1 < cols:
                    self.graph.add_edge((r, c), (r, c + 1), weight=block_size)
        self._path_cache: Dict[Tuple[NodeId, NodeId], List[NodeId]] = {}

    # -- geometry ------------------------------------------------------------
    @property
    def width(self) -> float:
        return (self.spec.cols - 1) * self.spec.block_size

    @property
    def height(self) -> float:
        return (self.spec.rows - 1) * self.spec.block_size

    def node_position(self, node: NodeId) -> Point:
        row, col = node
        return Point(col * self.spec.block_size, row * self.spec.block_size)

    def nodes(self) -> List[NodeId]:
        return list(self.graph.nodes)

    def node_count(self) -> int:
        return self.graph.number_of_nodes()

    def nearest_node(self, point: Point) -> NodeId:
        """Snap an arbitrary location to the closest intersection."""
        col = round(point.x / self.spec.block_size)
        row = round(point.y / self.spec.block_size)
        col = min(max(col, 0), self.spec.cols - 1)
        row = min(max(row, 0), self.spec.rows - 1)
        return (int(row), int(col))

    def random_node(self, rng) -> NodeId:
        row = int(rng.integers(0, self.spec.rows))
        col = int(rng.integers(0, self.spec.cols))
        return (row, col)

    # -- routing ---------------------------------------------------------------
    def shortest_path(self, source: NodeId, target: NodeId) -> List[NodeId]:
        """Shortest path (as a node list) between two intersections, cached."""
        key = (source, target)
        if key in self._path_cache:
            return self._path_cache[key]
        path = nx.shortest_path(self.graph, source, target, weight="weight")
        self._path_cache[key] = path
        self._path_cache[(target, source)] = list(reversed(path))
        return path

    def path_points(self, path: Sequence[NodeId]) -> List[Point]:
        return [self.node_position(node) for node in path]

    def path_length(self, path: Sequence[NodeId]) -> float:
        points = self.path_points(path)
        return sum(a.distance_to(b) for a, b in zip(points, points[1:]))

    def walk(
        self, path: Sequence[NodeId], start_offset: float, distance: float
    ) -> Tuple[Point, float]:
        """Position after travelling ``distance`` along ``path`` from ``start_offset``.

        Returns the reached point and the new offset (clamped to the path end).
        """
        points = self.path_points(path)
        total = self.path_length(path)
        offset = min(start_offset + distance, total)
        remaining = offset
        for a, b in zip(points, points[1:]):
            segment = a.distance_to(b)
            if remaining <= segment or segment == 0.0:
                if segment == 0.0:
                    return a, offset
                ratio = remaining / segment
                return (
                    Point(a.x + ratio * (b.x - a.x), a.y + ratio * (b.y - a.y)),
                    offset,
                )
            remaining -= segment
        return points[-1], total
