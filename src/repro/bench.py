"""Machine-readable performance benchmarks (``repro bench``).

Runs the three mining phases — snapshot clustering, crowd discovery,
gathering detection — on named benchmark scenarios with every requested
execution backend, and reports per-phase wall-clock timings plus scenario
sizes as one JSON document.  The CLI writes the document to ``BENCH_<n>.json``
at the repository root so the performance trajectory of the codebase is
tracked commit over commit; see ``docs/performance.md`` for how to read it.

Timings are best-of-``rounds`` (minimum over repetitions), the standard way
to suppress scheduler noise in micro-benchmarks.  Parity between backends is
asserted on every run: a benchmark that silently diverged would be measuring
two different answers.
"""

from __future__ import annotations

import json
import platform
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .clustering.snapshot import ClusterDatabase
from .core.config import GatheringParameters
from .core.crowd_discovery import discover_closed_crowds
from .core.gathering import dedupe_gatherings
from .core.pipeline import GatheringMiner
from .engine.registry import BACKENDS, REGISTRY, ExecutionConfig

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "PHASE_KEYS",
    "SERVING_KEYS",
    "SCENARIOS",
    "environment_info",
    "BenchScenario",
    "PhaseTimings",
    "ProfileCollector",
    "run_scenario",
    "run_bench",
    "write_bench_json",
    "load_bench_json",
    "diff_against_baseline",
    "regressions",
    "format_diff_rows",
]

#: Version of the emitted JSON layout (bump on breaking changes).
BENCH_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class BenchScenario:
    """One named benchmark workload: a scenario builder plus its parameters."""

    name: str
    description: str
    params: GatheringParameters
    fleet_size: int
    duration: int
    #: Reduced sizes used by ``--quick`` (CI smoke runs).
    quick_fleet_size: int
    quick_duration: int
    #: Backends this scenario runs on (``None`` = every requested backend).
    #: The megacity workload restricts itself to ``("numpy",)``: the scalar
    #: per-snapshot loop would take hours at 100k objects and has no
    #: out-of-core story to measure.
    restrict_backends: Optional[Tuple[str, ...]] = None
    #: Run phase 1 through the spilled (memmap) arena with object-axis
    #: interpolation shards — the out-of-core path this scenario exists to
    #: track; mined answers are unchanged (property-tested).
    outofcore: bool = False
    #: ``object_shards`` used when ``outofcore`` is set.
    object_shards: int = 4

    def build(self, quick: bool = False):
        """Materialise the trajectory database of this workload."""
        from .datagen.scenarios import (
            city_scenario,
            efficiency_scenario,
            megacity_scenario,
            metro_scenario,
        )

        fleet = self.quick_fleet_size if quick else self.fleet_size
        duration = self.quick_duration if quick else self.duration
        if self.name == "city":
            # Quick runs shrink the district count with the fleet so every
            # district can still host its event mix.
            return city_scenario(
                fleet_size=fleet, duration=duration, districts=4 if quick else 6, seed=97
            ).database
        if self.name == "metro":
            return metro_scenario(
                fleet_size=fleet, duration=duration, districts=5 if quick else 9, seed=101
            ).database
        if self.name == "megacity":
            return megacity_scenario(
                fleet_size=fleet, duration=duration, districts=6 if quick else 16, seed=211
            ).database
        return efficiency_scenario(
            fleet_size=fleet, duration=duration, gatherings=3, seed=43
        ).database


#: The tracked benchmark workloads.  ``city`` is the multi-district scenario
#: the phase-2/3 fast-path speedup is asserted on; ``efficiency`` mirrors the
#: paper's efficiency-study fleet from the PR-1 engine benchmark; ``metro``
#: is the 5k-object / 150-snapshot workload where phase 1 dominates (the
#: batched whole-database clustering target); ``megacity`` is the 100k-object
#: sparse-sample workload that runs phase 1 out-of-core (spilled memmap
#: arena + object-axis interpolation shards) — the only configuration that
#: holds it under the documented RSS budget (see docs/performance.md).
SCENARIOS: Dict[str, BenchScenario] = {
    scenario.name: scenario
    for scenario in (
        BenchScenario(
            name="city",
            description="multi-district city workload (phase-2/3 fast-path target)",
            params=GatheringParameters(
                eps=220.0, min_points=4, mc=4, delta=500.0, kc=8, kp=6, mp=4
            ),
            fleet_size=1600,
            duration=90,
            quick_fleet_size=320,
            quick_duration=36,
        ),
        BenchScenario(
            name="efficiency",
            description="paper efficiency-study fleet (single dense region)",
            params=GatheringParameters(
                eps=200.0, min_points=4, mc=6, delta=300.0, kc=15, kp=10, mp=5
            ),
            fleet_size=600,
            duration=60,
            quick_fleet_size=200,
            quick_duration=24,
        ),
        BenchScenario(
            name="metro",
            description="metropolis fleet (phase-1 batched-clustering target)",
            params=GatheringParameters(
                eps=220.0, min_points=4, mc=4, delta=500.0, kc=8, kp=6, mp=4
            ),
            fleet_size=5000,
            duration=150,
            quick_fleet_size=700,
            quick_duration=40,
        ),
        BenchScenario(
            name="megacity",
            description="100k-object sparse-sample city (out-of-core phase-1 target)",
            params=GatheringParameters(
                eps=200.0, min_points=5, mc=10, delta=400.0, kc=8, kp=5, mp=10
            ),
            fleet_size=100_000,
            duration=60,
            quick_fleet_size=12_000,
            quick_duration=24,
            restrict_backends=("numpy",),
            outofcore=True,
        ),
    )
}


@dataclass
class PhaseTimings:
    """Best-of-rounds wall-clock seconds of one backend on one scenario."""

    backend: str
    cluster_seconds: float = 0.0
    crowd_seconds: float = 0.0
    detect_seconds: float = 0.0
    #: Sub-phase of ``crowd_seconds``: proximity-graph build time on the
    #: frontier fast path (0.0 for backends that do not build one).
    proximity_seconds: float = 0.0
    crowds: int = 0
    gatherings: int = 0

    @property
    def total_seconds(self) -> float:
        """Sum of the three phase timings."""
        return self.cluster_seconds + self.crowd_seconds + self.detect_seconds

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict view used by the JSON report."""
        return {
            "backend": self.backend,
            "cluster_seconds": round(self.cluster_seconds, 6),
            "crowd_seconds": round(self.crowd_seconds, 6),
            "proximity_seconds": round(self.proximity_seconds, 6),
            "detect_seconds": round(self.detect_seconds, 6),
            "total_seconds": round(self.total_seconds, 6),
            "crowds": self.crowds,
            "gatherings": self.gatherings,
        }


@dataclass
class ScenarioReport:
    """Everything measured for one scenario across the requested backends."""

    name: str
    description: str
    quick: bool
    objects: int = 0
    snapshots: int = 0
    clusters: int = 0
    backends: List[PhaseTimings] = field(default_factory=list)

    def speedup(self) -> Optional[float]:
        """python-vs-numpy total-time ratio, when both backends ran."""
        by_backend = {timings.backend: timings for timings in self.backends}
        if "python" not in by_backend or "numpy" not in by_backend:
            return None
        numpy_total = by_backend["numpy"].total_seconds
        if numpy_total <= 0:
            return None
        return by_backend["python"].total_seconds / numpy_total

    def phase23_speedup(self) -> Optional[float]:
        """python-vs-numpy ratio over phases 2 + 3 only (the fast path)."""
        by_backend = {timings.backend: timings for timings in self.backends}
        if "python" not in by_backend or "numpy" not in by_backend:
            return None
        numpy_part = (
            by_backend["numpy"].crowd_seconds + by_backend["numpy"].detect_seconds
        )
        if numpy_part <= 0:
            return None
        python_part = (
            by_backend["python"].crowd_seconds + by_backend["python"].detect_seconds
        )
        return python_part / numpy_part

    def as_dict(self) -> Dict:
        """Plain-dict view used by the JSON report."""
        speedup = self.speedup()
        phase23 = self.phase23_speedup()
        return {
            "name": self.name,
            "description": self.description,
            "quick": self.quick,
            "objects": self.objects,
            "snapshots": self.snapshots,
            "clusters": self.clusters,
            "backends": [timings.as_dict() for timings in self.backends],
            "speedup_total": round(speedup, 3) if speedup is not None else None,
            "speedup_phase23": round(phase23, 3) if phase23 is not None else None,
        }


def _time_phases(
    database,
    cluster_db: ClusterDatabase,
    params: GatheringParameters,
    backend: str,
    rounds: int,
    profiler=None,
    execution: Optional[ExecutionConfig] = None,
):
    """Best-of-``rounds`` timings of the three phases on one backend.

    Returns the timings together with the mined answer's identity (crowd
    key sequences and gathering keys + participator sets) so the caller can
    assert parity across backends without re-running any phase.  When a
    ``cProfile.Profile`` is supplied it is enabled around every round's
    phase work (``--profile``); profiled wall-clock numbers carry the
    instrumentation overhead and are not comparable to unprofiled runs.
    An ``execution`` config override (out-of-core scenarios) is honoured
    when its backend matches the timed one.
    """
    if execution is not None and execution.backend == backend:
        config = execution
    else:
        config = ExecutionConfig(backend=backend)
    miner = GatheringMiner(params, config=config)
    detector = REGISTRY.create("detection", "TAD*", backend=backend, config=config)
    timings = PhaseTimings(backend=backend)
    best_cluster = best_crowd = best_detect = float("inf")
    best_proximity = 0.0
    crowd_result = gatherings = None
    own_cluster_db = None
    for _ in range(max(1, rounds)):
        if profiler is not None:
            profiler.enable()
        started = time.perf_counter()
        own_cluster_db = miner.cluster(database)
        best_cluster = min(best_cluster, time.perf_counter() - started)

        started = time.perf_counter()
        crowd_result = discover_closed_crowds(
            cluster_db, params, strategy="GRID", config=config
        )
        elapsed = time.perf_counter() - started
        if elapsed < best_crowd:
            # The proximity sub-phase is reported from the same round as the
            # best crowd timing so the two numbers are consistent.
            best_crowd = elapsed
            best_proximity = crowd_result.proximity_seconds

        started = time.perf_counter()
        # Dedupe inside the timed region, matching GatheringMiner.detect:
        # branching crowds re-derive shared gatherings, and the reported
        # counts must equal what `repro mine` reports.
        gatherings = dedupe_gatherings(
            [
                gathering
                for crowd in crowd_result.closed_crowds
                for gathering in detector(crowd, params)
            ]
        )
        best_detect = min(best_detect, time.perf_counter() - started)
        if profiler is not None:
            profiler.disable()

        timings.crowds = len(crowd_result.closed_crowds)
        timings.gatherings = len(gatherings)
    timings.cluster_seconds = best_cluster
    timings.crowd_seconds = best_crowd
    timings.proximity_seconds = best_proximity
    timings.detect_seconds = best_detect
    answer = (
        # Phase-1 identity: every backend must produce the same snapshot
        # cluster set — ids, timestamps AND memberships — from the same
        # database.  ((timestamp, cluster_id) is unique, so the sort never
        # compares the frozensets.)
        sorted(
            (cluster.timestamp, cluster.cluster_id, cluster.object_ids())
            for cluster in own_cluster_db
        ),
        [crowd.keys() for crowd in crowd_result.closed_crowds],
        [(g.keys(), tuple(sorted(g.participator_ids))) for g in gatherings],
    )
    return timings, answer


class ProfileCollector:
    """Per-(scenario, backend) cProfile aggregation for ``bench --profile``.

    One profiler instruments every timed round of one backend on one
    scenario; :meth:`print_top` writes the top cumulative entries per
    profile to a stream and :meth:`dump` merges everything into a single
    binary stats file for ``snakeviz``/``pstats`` post-processing.
    """

    def __init__(self) -> None:
        import cProfile

        self._profile_factory = cProfile.Profile
        self.profiles: Dict = {}

    def profiler_for(self, scenario: str, backend: str):
        """The (lazily created) profiler of one scenario/backend cell."""
        key = (scenario, backend)
        if key not in self.profiles:
            self.profiles[key] = self._profile_factory()
        return self.profiles[key]

    def print_top(self, top: int, stream) -> None:
        """Write each profile's top-``top`` cumulative entries to ``stream``."""
        import pstats

        for (scenario, backend), profiler in sorted(self.profiles.items()):
            print(f"\n-- profile: {scenario} / {backend} "
                  f"(top {top} by cumulative time) --", file=stream)
            stats = pstats.Stats(profiler, stream=stream)
            stats.strip_dirs().sort_stats("cumulative").print_stats(top)

    def dump(self, path) -> None:
        """Merge all profiles into one binary pstats file at ``path``."""
        import pstats

        profilers = list(self.profiles.values())
        if not profilers:
            return
        combined = pstats.Stats(profilers[0])
        for profiler in profilers[1:]:
            combined.add(profiler)
        combined.dump_stats(str(path))


def run_scenario(
    scenario: BenchScenario,
    backends: Sequence[str] = BACKENDS,
    quick: bool = False,
    rounds: int = 3,
    profile: Optional[ProfileCollector] = None,
) -> ScenarioReport:
    """Benchmark one scenario on the requested backends (with parity checks).

    A scenario may restrict the backend list (``restrict_backends``) and
    opt into the out-of-core phase-1 path (``outofcore``): its spilled
    arena lives in a temporary directory for the duration of the run and
    the timed cluster phase streams frames from it.
    """
    import tempfile

    database = scenario.build(quick=quick)
    params = scenario.params
    effective_backends = [
        backend
        for backend in backends
        if scenario.restrict_backends is None or backend in scenario.restrict_backends
    ]
    if not effective_backends:
        effective_backends = list(scenario.restrict_backends or backends)
    with tempfile.TemporaryDirectory(prefix=f"bench-{scenario.name}-") as spill_root:
        execution = None
        if scenario.outofcore:
            execution = ExecutionConfig(
                backend="numpy",
                spill_dir=spill_root,
                object_shards=scenario.object_shards,
            )
        # Phases 2/3 are timed against one shared cluster database so both
        # backends answer the identical mining question.
        cluster_db = GatheringMiner(
            params, config=execution or ExecutionConfig(backend="numpy")
        ).cluster(database)
        if "python" in effective_backends:
            # The batched builder's clusters are lazy frame views;
            # materialise the member dicts up front so the scalar backend's
            # timed crowd phase (which reads them) measures algorithm work,
            # not one-time view expansion.
            for cluster in cluster_db:
                cluster.members
        report = ScenarioReport(
            name=scenario.name,
            description=scenario.description,
            quick=quick,
            objects=len(database),
            snapshots=cluster_db.snapshot_count(),
            clusters=len(cluster_db),
        )
        reference_answer = None
        for backend in effective_backends:
            profiler = (
                profile.profiler_for(scenario.name, backend)
                if profile is not None
                else None
            )
            timings, answer = _time_phases(
                database,
                cluster_db,
                params,
                backend,
                rounds=1 if quick else rounds,
                profiler=profiler,
                execution=execution,
            )
            if reference_answer is None:
                reference_answer = answer
            elif answer != reference_answer:
                # Crowds *and* gatherings (with participator sets) must match —
                # a timing of two different answers is not a benchmark.
                raise AssertionError(
                    f"backend {backend!r} diverged from {effective_backends[0]!r} on "
                    f"scenario {scenario.name!r}"
                )
            report.backends.append(timings)
    return report


def run_bench(
    scenario_names: Optional[Sequence[str]] = None,
    backends: Sequence[str] = BACKENDS,
    quick: bool = False,
    rounds: int = 3,
    profile: Optional[ProfileCollector] = None,
) -> Dict:
    """Run the requested benchmark scenarios and assemble the JSON payload."""
    names = list(scenario_names) if scenario_names else list(SCENARIOS)
    unknown = [name for name in names if name not in SCENARIOS]
    if unknown:
        raise ValueError(
            f"unknown bench scenario(s) {unknown}; choose from {sorted(SCENARIOS)}"
        )
    for backend in backends:
        if backend not in BACKENDS:
            raise ValueError(f"unknown backend {backend!r}; choose from {BACKENDS}")
    reports = [
        run_scenario(
            SCENARIOS[name],
            backends=backends,
            quick=quick,
            rounds=rounds,
            profile=profile,
        )
        for name in names
    ]
    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "quick": quick,
        "rounds": 1 if quick else rounds,
        "environment": environment_info(),
        "scenarios": [report.as_dict() for report in reports],
    }


def environment_info() -> Dict[str, str]:
    """The environment block stamped into every bench-schema payload."""
    import numpy

    return {
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "machine": platform.machine(),
    }


def write_bench_json(payload: Dict, path) -> None:
    """Write one benchmark payload as pretty-printed JSON."""
    from pathlib import Path

    Path(path).write_text(json.dumps(payload, indent=2) + "\n")


# -- baseline diffing ------------------------------------------------------------

#: The per-backend timing keys compared by the baseline diff.
PHASE_KEYS = (
    "cluster_seconds",
    "crowd_seconds",
    "proximity_seconds",
    "detect_seconds",
    "total_seconds",
)

#: The serving-tier keys the diff additionally compares on ``serving``
#: scenario rows (written by ``repro loadtest``).  Latencies and error
#: rate share the lower-is-better regression semantics of the phase
#: timings; throughput is reported in the payload but not gated here
#: (higher is better, so the ratio test would read backwards).
SERVING_KEYS = (
    "p50_seconds",
    "p95_seconds",
    "p99_seconds",
    "error_rate",
)


def load_bench_json(path) -> Dict:
    """Load a previously written ``BENCH_<n>.json`` payload."""
    from pathlib import Path

    payload = json.loads(Path(path).read_text())
    if "scenarios" not in payload:
        raise ValueError(f"{path} is not a bench payload (no 'scenarios' key)")
    return payload


def _index_backends(payload: Dict) -> Dict:
    """``(scenario, backend) -> (timings dict, scenario dict)`` of a payload."""
    index = {}
    for scenario in payload.get("scenarios", []):
        for timings in scenario.get("backends", []):
            index[(scenario["name"], timings["backend"])] = (timings, scenario)
    return index


def diff_against_baseline(payload: Dict, baseline: Dict) -> List[Dict]:
    """Per-phase timing deltas of ``payload`` vs a prior bench payload.

    Every ``(scenario, backend, phase)`` present in *both* documents yields
    one row with the baseline and current seconds, the absolute delta and
    the current/baseline ratio; scenarios or backends only one side ran are
    skipped (they have nothing to regress against).  Rows where the two
    runs used different ``quick`` settings are marked ``comparable: False``
    — the workload sizes differ, so the ratio is not meaningful as a
    regression signal (a quick run is expected to be far *below* a full
    baseline; only a catastrophic slowdown would cross it).
    """
    current = _index_backends(payload)
    previous = _index_backends(baseline)
    rows: List[Dict] = []
    for key in sorted(current.keys() & previous.keys()):
        scenario_name, backend = key
        now, now_scenario = current[key]
        then, then_scenario = previous[key]
        comparable = bool(now_scenario.get("quick")) == bool(then_scenario.get("quick"))
        for phase in PHASE_KEYS + SERVING_KEYS:
            if phase not in then or phase not in now:
                # Older payloads predate some sub-phase keys (e.g. a baseline
                # written before proximity_seconds existed): nothing to diff.
                continue
            before = float(then[phase])
            after = float(now[phase])
            rows.append(
                {
                    "scenario": scenario_name,
                    "backend": backend,
                    "phase": phase,
                    "baseline_seconds": before,
                    "current_seconds": after,
                    "delta_seconds": after - before,
                    "ratio": (after / before) if before > 0 else None,
                    "comparable": comparable,
                }
            )
    return rows


def regressions(
    rows: List[Dict], tolerance: float, min_seconds: float = 0.01
) -> List[Dict]:
    """The diff rows slower than ``baseline * (1 + tolerance)``.

    ``tolerance`` is a fraction: ``0.25`` flags phases more than 25% slower
    than the baseline.  The baseline is floored at ``min_seconds`` before
    the comparison: sub-millisecond phases jitter by whole multiples on a
    shared machine (one scheduler stall is a 50x "ratio"), so a tiny — or
    zero — baseline only flags once the current timing crosses the
    *floored* threshold: scheduler noise passes, a genuine blow-up still
    fails.  Incomparable rows (quick-vs-full) still flag when they cross
    the threshold — crossing a full-size baseline from a quick run is
    exactly the catastrophic case the CI smoke check exists for.
    """
    if tolerance < 0:
        raise ValueError("tolerance must be non-negative")
    return [
        row
        for row in rows
        if row["current_seconds"]
        > max(row["baseline_seconds"], min_seconds) * (1.0 + tolerance)
    ]


def format_diff_rows(rows: List[Dict]) -> List[str]:
    """Human-readable table lines for a baseline diff."""
    lines = [
        f"{'scenario':<12} {'backend':<8} {'phase':<16} "
        f"{'baseline':>10} {'current':>10} {'delta':>10} {'ratio':>7}"
    ]
    for row in rows:
        ratio = f"{row['ratio']:.2f}x" if row["ratio"] is not None else "n/a"
        note = "" if row["comparable"] else "  (different sizes)"
        lines.append(
            f"{row['scenario']:<12} {row['backend']:<8} {row['phase']:<16} "
            f"{row['baseline_seconds']:>9.3f}s {row['current_seconds']:>9.3f}s "
            f"{row['delta_seconds']:>+9.3f}s {ratio:>7}{note}"
        )
    return lines
