"""Cross-cutting resilience layer: retries, fault injection, supervision.

Long mining jobs and always-on serving meet real-world failures — a worker
process dying mid-shard, a torn spill file, a locked SQLite database, a
client vanishing mid-request.  This package centralises the machinery every
layer uses to survive them:

* :class:`~repro.resilience.retry.RetryPolicy` — deterministic exponential
  backoff with jitter and an overall deadline, usable around any callable;
* :class:`~repro.resilience.faults.FaultPlan` — a seeded, reproducible
  fault-injection registry.  Named injection sites throughout the codebase
  (``worker.crash``, ``worker.slow``, ``spill.corrupt``, ``store.locked``,
  ``serve.drop``, ``checkpoint.torn``) fire exactly when an armed plan says
  so, which is what makes every chaos run replayable;
* :class:`~repro.resilience.counters.ResilienceCounters` — thread-safe
  counters the serving tier surfaces on ``/stats`` (shed requests, request
  timeouts, dropped connections);
* :func:`~repro.resilience.supervisor.run_supervised` — a supervised
  process-pool executor that detects worker death and per-job timeouts,
  retries the failed deterministic jobs and degrades to in-process serial
  execution, so parallel phase-1 results stay bit-identical under crashes.

See ``docs/operations.md`` for the operational story: failure modes, the
retry/backoff/timeout knobs, the fault-plan format and the chaos harness.
"""

from .counters import ResilienceCounters
from .faults import (
    FaultError,
    FaultPlan,
    FaultSpec,
    active_plan,
    clear_plan,
    fault_point,
    install_plan,
    maybe_fault,
)
from .retry import RetryDeadlineExceeded, RetryPolicy
from .supervisor import SupervisorReport, run_supervised

__all__ = [
    "FaultError",
    "FaultPlan",
    "FaultSpec",
    "ResilienceCounters",
    "RetryDeadlineExceeded",
    "RetryPolicy",
    "SupervisorReport",
    "active_plan",
    "clear_plan",
    "fault_point",
    "install_plan",
    "maybe_fault",
    "run_supervised",
]
