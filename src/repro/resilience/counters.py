"""Thread-safe event counters the serving tier surfaces on ``/stats``.

One :class:`ResilienceCounters` instance is shared by the request app, the
connection pool and the async transport, so a single ``/stats`` read shows
every resilience event for the process: shed requests, request timeouts,
dropped connections, locked-database retries.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable

__all__ = ["ResilienceCounters"]

#: Counters always present in the snapshot so the /stats shape is stable.
_DEFAULT_NAMES = (
    "shed",
    "request_timeouts",
    "dropped_connections",
    "locked_retries",
    "ingest_rejected",
)


class ResilienceCounters:
    """A named bag of monotonically increasing, thread-safe counters."""

    def __init__(self, names: Iterable[str] = _DEFAULT_NAMES) -> None:
        self._lock = threading.Lock()
        self._counts: Dict[str, int] = {name: 0 for name in names}

    def increment(self, name: str, amount: int = 1) -> int:
        """Add ``amount`` to counter ``name`` (created on first use); new value."""
        with self._lock:
            value = self._counts.get(name, 0) + int(amount)
            self._counts[name] = value
            return value

    def value(self, name: str) -> int:
        """Current value of counter ``name`` (0 when never incremented)."""
        with self._lock:
            return self._counts.get(name, 0)

    def as_dict(self) -> Dict[str, int]:
        """Snapshot of every counter, sorted by name."""
        with self._lock:
            return {name: self._counts[name] for name in sorted(self._counts)}
