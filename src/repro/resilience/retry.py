"""Deterministic retry with exponential backoff, jitter and a deadline.

:class:`RetryPolicy` is the one retry implementation every layer shares —
the serving tier's locked-database reads, the out-of-core builder's
corrupted-spill rebuilds, the supervised executor's pool restarts.  Keeping
it in one place means the backoff behaviour is uniform, unit-tested once,
and deterministic: jitter comes from a policy-owned seeded RNG, so two runs
with the same seed sleep the same amounts (which chaos parity tests rely
on).
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Optional, Tuple, Type, Union

__all__ = ["RetryDeadlineExceeded", "RetryPolicy"]

#: What ``retry_on`` accepts: exception classes or a predicate over the error.
RetryCondition = Union[
    Type[BaseException],
    Tuple[Type[BaseException], ...],
    Callable[[BaseException], bool],
]


class RetryDeadlineExceeded(RuntimeError):
    """The policy's overall deadline elapsed before a call succeeded."""


@dataclass
class RetryPolicy:
    """Exponential backoff with jitter, an attempt cap and a deadline.

    Attributes
    ----------
    max_attempts:
        Total tries (the first call counts); at least 1.
    base_delay:
        Sleep before the first retry, in seconds.
    multiplier:
        Growth factor between consecutive delays.
    max_delay:
        Upper clamp on any single delay.
    jitter:
        Fraction of each delay drawn uniformly at random and added to it
        (``0.1`` = up to +10%).  ``0`` disables jitter entirely.
    deadline_seconds:
        Overall wall-clock budget across all attempts and sleeps; ``None``
        means unlimited.  When the budget would be exceeded by the next
        sleep, :class:`RetryDeadlineExceeded` is raised from the last error.
    seed:
        Seed for the jitter RNG.  A seeded policy produces the same delay
        sequence on every run — reproducible chaos runs depend on it.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.1
    deadline_seconds: Optional[float] = None
    seed: Optional[int] = None
    _rng: random.Random = field(init=False, repr=False, compare=False, default=None)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be at least 1.0")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be a fraction in [0, 1]")
        self._rng = random.Random(self.seed)

    def delays(self) -> Iterator[float]:
        """The jittered sleep before each retry (``max_attempts - 1`` values)."""
        delay = self.base_delay
        for _ in range(self.max_attempts - 1):
            jittered = delay
            if self.jitter:
                jittered += delay * self.jitter * self._rng.random()
            yield min(jittered, self.max_delay)
            delay = min(delay * self.multiplier, self.max_delay)

    @staticmethod
    def _matches(error: BaseException, retry_on: RetryCondition) -> bool:
        """Whether ``error`` is retryable under the given condition."""
        if isinstance(retry_on, tuple) or isinstance(retry_on, type):
            return isinstance(error, retry_on)
        return bool(retry_on(error))

    def call(
        self,
        fn: Callable[[], Any],
        retry_on: RetryCondition = (Exception,),
        on_retry: Optional[Callable[[int, BaseException], None]] = None,
        sleep: Callable[[float], None] = time.sleep,
        clock: Callable[[], float] = time.monotonic,
    ) -> Any:
        """Call ``fn`` until it succeeds, retries are exhausted, or the deadline hits.

        Parameters
        ----------
        fn:
            Zero-argument callable (bind arguments with a closure/partial).
        retry_on:
            Exception class(es) to retry, or a predicate ``error -> bool``.
            Non-matching errors propagate immediately.
        on_retry:
            Observer called with ``(attempt_number, error)`` before each
            retry sleep — counters hook in here.
        sleep / clock:
            Injectable for tests (virtual time).
        """
        started = clock()
        last_error: Optional[BaseException] = None
        delays = self.delays()
        for attempt in range(1, self.max_attempts + 1):
            try:
                return fn()
            except BaseException as error:  # noqa: BLE001 - filtered below
                if not self._matches(error, retry_on):
                    raise
                last_error = error
                if attempt == self.max_attempts:
                    raise
                delay = next(delays)
                if (
                    self.deadline_seconds is not None
                    and clock() - started + delay > self.deadline_seconds
                ):
                    raise RetryDeadlineExceeded(
                        f"retry deadline of {self.deadline_seconds:g}s exceeded "
                        f"after {attempt} attempt(s): {error}"
                    ) from error
                if on_retry is not None:
                    on_retry(attempt, error)
                sleep(delay)
        raise last_error  # pragma: no cover - loop always returns or raises
