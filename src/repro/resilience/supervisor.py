"""Supervised process-pool execution for deterministic mining jobs.

``multiprocessing.Pool`` hangs forever when a worker dies abruptly, which
turns a single OOM-killed shard into a wedged mining run.
:func:`run_supervised` replaces the bare pool with a
:class:`~concurrent.futures.ProcessPoolExecutor` under a supervisor loop:

* worker death surfaces as :class:`BrokenProcessPool` and a stuck job as a
  per-job timeout — both are caught, the pool is torn down, and the
  outstanding jobs are resubmitted to a fresh pool;
* after ``max_restarts`` pool restarts the supervisor degrades to running
  the remaining jobs serially in-process, so a pathological environment
  still completes (just slower);
* jobs are pure functions of their payloads, so a retried job returns the
  same value and the overall result list is bit-identical with or without
  crashes.

Fault injection for chaos tests is armed in the *parent*: when a
:class:`~repro.resilience.faults.FaultPlan` arms ``worker.crash`` or
``worker.slow``, the supervisor attaches the injection to the job payload
the first time that job is submitted.  A resubmitted job carries no
injections, so a crashed job cannot crash again and every chaos run
terminates deterministically.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from collections import deque
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, Iterable, List, Optional, Tuple

from .faults import maybe_fault

__all__ = ["JOB_TIMEOUT_ENV", "SupervisorReport", "run_supervised"]

#: Environment variable supplying a default per-job timeout in seconds.
JOB_TIMEOUT_ENV = "REPRO_JOB_TIMEOUT_SECONDS"

#: Pool restarts tolerated before degrading to in-process serial execution.
DEFAULT_MAX_RESTARTS = 3


@dataclass
class SupervisorReport:
    """What the supervisor had to do to finish a batch of jobs."""

    restarts: int = 0
    retried: int = 0
    serial_fallback: bool = False

    def as_dict(self) -> Dict[str, Any]:
        """Plain-dict snapshot for logs and stats payloads."""
        return {
            "restarts": self.restarts,
            "retried": self.retried,
            "serial_fallback": self.serial_fallback,
        }


def _invoke(fn: Callable[[Any], Any], payload: Any, injections: Tuple[Tuple[Any, ...], ...]) -> Any:
    """Worker-side shim: apply armed injections, then run the real job."""
    for injection in injections:
        if injection[0] == "crash":
            os._exit(17)
        elif injection[0] == "slow":
            time.sleep(float(injection[1]))
    return fn(payload)


def _arm_injections() -> Tuple[Tuple[Any, ...], ...]:
    """Probe the worker fault sites once for a job about to be submitted."""
    injections: List[Tuple[Any, ...]] = []
    if maybe_fault("worker.crash") is not None:
        injections.append(("crash",))
    slow = maybe_fault("worker.slow")
    if slow is not None:
        injections.append(("slow", slow.param if slow.param > 0 else 0.5))
    return tuple(injections)


def _resolve_timeout(job_timeout: Optional[float]) -> Optional[float]:
    """Effective per-job timeout: explicit argument, else environment, else none."""
    if job_timeout is not None:
        return job_timeout if job_timeout > 0 else None
    text = os.environ.get(JOB_TIMEOUT_ENV)
    if not text:
        return None
    value = float(text)
    return value if value > 0 else None


def _default_context() -> multiprocessing.context.BaseContext:
    """Fork when available (cheap, inherits plan state); platform default otherwise."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-posix platforms
        return multiprocessing.get_context()


def _kill_pool(executor: ProcessPoolExecutor) -> None:
    """Forcefully stop a broken/stuck pool without waiting on its jobs."""
    processes = getattr(executor, "_processes", None) or {}
    for process in list(processes.values()):
        try:
            process.terminate()
        except Exception:  # pragma: no cover - process already gone
            pass
    executor.shutdown(wait=False, cancel_futures=True)


def run_supervised(
    fn: Callable[[Any], Any],
    payloads: Iterable[Any],
    *,
    workers: int = 1,
    job_timeout: Optional[float] = None,
    max_restarts: int = DEFAULT_MAX_RESTARTS,
    mp_context: Optional[multiprocessing.context.BaseContext] = None,
    report: Optional[SupervisorReport] = None,
) -> List[Any]:
    """Run ``fn`` over ``payloads`` in a supervised process pool.

    Results come back as a list in payload order, exactly as
    ``pool.map(fn, payloads)`` would produce — but worker death and per-job
    timeouts are survived by restarting the pool and resubmitting the
    outstanding jobs (each payload runs to completion exactly once in the
    returned result).  ``payloads`` may be a lazy iterable; at most
    ``2 * workers`` jobs are in flight at a time.

    Parameters
    ----------
    fn:
        Module-level (picklable), deterministic single-payload function.
    workers:
        Pool size; clamped to at least 1.
    job_timeout:
        Per-job wall-clock limit in seconds.  ``None`` reads
        :data:`JOB_TIMEOUT_ENV`; zero/negative disables the limit.
    max_restarts:
        Pool restarts tolerated before the remaining jobs run serially
        in-process.
    mp_context:
        Multiprocessing context override (defaults to fork when available).
    report:
        Optional :class:`SupervisorReport` mutated in place with what the
        supervisor had to do; a fresh one is used when omitted.

    Errors raised by ``fn`` itself (as opposed to the pool dying) propagate
    to the caller unchanged.
    """
    rep = report if report is not None else SupervisorReport()
    workers = max(1, int(workers))
    timeout = _resolve_timeout(job_timeout)
    iterator = iter(payloads)
    pending_entries: Deque[Tuple[int, Any, Tuple[Tuple[Any, ...], ...]]] = deque()
    exhausted = False
    next_index = 0
    results: Dict[int, Any] = {}

    def _pull() -> bool:
        """Move one payload from the iterator into the submission queue."""
        nonlocal exhausted, next_index
        if exhausted:
            return False
        try:
            payload = next(iterator)
        except StopIteration:
            exhausted = True
            return False
        pending_entries.append((next_index, payload, _arm_injections()))
        next_index += 1
        return True

    while pending_entries or not exhausted:
        if rep.restarts > max_restarts:
            rep.serial_fallback = True
            while pending_entries or _pull():
                if pending_entries:
                    index, payload, _ = pending_entries.popleft()
                    results[index] = fn(payload)
            break

        context = mp_context if mp_context is not None else _default_context()
        executor = ProcessPoolExecutor(max_workers=workers, mp_context=context)
        in_flight: Dict[Any, Tuple[int, Any]] = {}
        order: Deque[Any] = deque()

        def _recover(
            failed: List[Tuple[int, Any, Tuple[Tuple[Any, ...], ...]]],
        ) -> None:
            """Harvest finished jobs, requeue the rest, tear the pool down."""
            requeue = list(failed)
            for stale in order:
                stale_index, stale_payload = in_flight.pop(stale)
                if stale.done() and not stale.cancelled():
                    try:
                        results[stale_index] = stale.result()
                        continue
                    except BaseException:
                        pass
                requeue.append((stale_index, stale_payload, ()))
            order.clear()
            pending_entries.extendleft(reversed(requeue))
            rep.restarts += 1
            rep.retried += len(requeue)
            _kill_pool(executor)

        try:
            window = workers * 2
            broken = False
            while not broken:
                while len(in_flight) < window and (pending_entries or _pull()):
                    index, payload, injections = pending_entries.popleft()
                    try:
                        future = executor.submit(_invoke, fn, payload, injections)
                    except BrokenProcessPool:
                        _recover([(index, payload, ())])
                        broken = True
                        break
                    in_flight[future] = (index, payload)
                    order.append(future)
                if broken:
                    break
                if not order:
                    executor.shutdown(wait=True)
                    break
                future = order.popleft()
                index, payload = in_flight.pop(future)
                try:
                    results[index] = future.result(timeout=timeout)
                except (BrokenProcessPool, FuturesTimeoutError, OSError):
                    _recover([(index, payload, ())])
                    break
        except BaseException:
            _kill_pool(executor)
            raise

    return [results[index] for index in range(next_index)]
