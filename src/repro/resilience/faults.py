"""Deterministic fault-injection plans and named injection sites.

A :class:`FaultPlan` arms a set of *named sites* sprinkled through the
codebase.  Each site is probed with :func:`maybe_fault` (or
:func:`fault_point`, which raises); the plan decides — purely from how many
times the site has been hit so far — whether this hit fires.  Because the
decision is a function of the hit counter (no wall clock, no shared
randomness), a chaos run with a given plan is exactly reproducible.

Known sites (new code is free to add more):

``worker.crash``
    A supervised pool worker hard-exits mid-job (armed per job index by the
    supervisor in the *parent*, so a retried job never re-crashes).
``worker.slow``
    A pool job stalls for ``param`` seconds (exercises per-job timeouts).
``spill.corrupt``
    One spill column file is corrupted right after finalize, before the
    checksum verification (exercises the rebuild path).
``checkpoint.torn``
    A checkpoint write is truncated mid-file (exercises rotation fallback).
``store.locked``
    A pooled read raises ``sqlite3.OperationalError: database is locked``
    (exercises the retry-with-backoff path).
``serve.drop``
    The async server abruptly drops a client connection after reading the
    request.
``ingest.garble``
    The quality firewall corrupts one raw record (NaN coordinates) before
    validation — both the batch loaders and the streaming ingest path probe
    it, so chaos runs can assert that corrupted records are rejected and
    fully accounted rather than mined.

Plans are armed three ways: programmatically via :func:`install_plan`, from
the CLI via ``--fault-plan``, or from the ``REPRO_FAULT_PLAN`` environment
variable (read lazily, so forked/spawned worker processes arm themselves
the same way).  Plan specs parse from a compact string
(``"worker.crash:1,worker.slow:1:2.5"`` — ``site:times[:param]``) or a JSON
document (``{"seed": 7, "faults": [{"site": ..., "times": ..., "at": [...],
"param": ...}]}``).
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple

__all__ = [
    "FAULT_PLAN_ENV",
    "FaultError",
    "FaultPlan",
    "FaultSpec",
    "active_plan",
    "clear_plan",
    "fault_point",
    "install_plan",
    "maybe_fault",
]

#: Environment variable arming a process-wide plan (same spec formats).
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"


class FaultError(RuntimeError):
    """An injected fault (the generic exception :func:`fault_point` raises)."""


@dataclass(frozen=True)
class FaultSpec:
    """Arming rule for one site.

    ``times`` fires the first N hits of the site; ``at`` instead fires the
    exact 0-based hit indices listed (and wins over ``times`` when given).
    ``param`` carries a site-specific magnitude — sleep seconds for
    ``worker.slow``, unused elsewhere.
    """

    site: str
    times: int = 1
    at: Tuple[int, ...] = ()
    param: float = 0.0

    def fires_on(self, hit: int) -> bool:
        """Whether the ``hit``-th probe of this site fires."""
        if self.at:
            return hit in self.at
        return hit < self.times


class FaultPlan:
    """A seeded, counter-driven set of armed fault sites.

    Hit counters are per-plan and thread-safe; the ``seed`` is carried for
    components that want plan-scoped determinism (e.g. seeding a
    :class:`~repro.resilience.retry.RetryPolicy`'s jitter).
    """

    def __init__(self, specs: Iterable[FaultSpec] = (), seed: int = 0) -> None:
        self.seed = int(seed)
        self._specs: Dict[str, FaultSpec] = {}
        for spec in specs:
            if spec.site in self._specs:
                raise ValueError(f"duplicate fault site {spec.site!r} in plan")
            self._specs[spec.site] = spec
        self._hits: Dict[str, int] = {}
        self._fired: Dict[str, int] = {}
        self._lock = threading.Lock()

    # -- construction ------------------------------------------------------------
    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Build a plan from a compact or JSON spec string (see module docs)."""
        text = text.strip()
        if not text:
            return cls()
        if text.startswith("{"):
            document = json.loads(text)
            specs = [
                FaultSpec(
                    site=str(entry["site"]),
                    times=int(entry.get("times", 1)),
                    at=tuple(int(i) for i in entry.get("at", ())),
                    param=float(entry.get("param", 0.0)),
                )
                for entry in document.get("faults", [])
            ]
            return cls(specs, seed=int(document.get("seed", 0)))
        specs = []
        seed = 0
        for chunk in text.split(","):
            chunk = chunk.strip()
            if not chunk:
                continue
            parts = chunk.split(":")
            if parts[0] == "seed":
                if len(parts) != 2:
                    raise ValueError(f"malformed seed entry {chunk!r}")
                seed = int(parts[1])
                continue
            if len(parts) > 3:
                raise ValueError(
                    f"malformed fault entry {chunk!r} (want site[:times[:param]])"
                )
            site = parts[0]
            times = int(parts[1]) if len(parts) > 1 else 1
            param = float(parts[2]) if len(parts) > 2 else 0.0
            specs.append(FaultSpec(site=site, times=times, param=param))
        return cls(specs, seed=seed)

    # -- probing -----------------------------------------------------------------
    @property
    def sites(self) -> Tuple[str, ...]:
        """The armed site names, sorted."""
        return tuple(sorted(self._specs))

    def spec_for(self, site: str) -> Optional[FaultSpec]:
        """The armed spec of a site (``None`` when the site is not in the plan)."""
        return self._specs.get(site)

    def should_fire(self, site: str) -> Optional[FaultSpec]:
        """Probe a site once: count the hit, return the spec iff it fires."""
        with self._lock:
            hit = self._hits.get(site, 0)
            self._hits[site] = hit + 1
            spec = self._specs.get(site)
            if spec is None or not spec.fires_on(hit):
                return None
            self._fired[site] = self._fired.get(site, 0) + 1
            return spec

    def fired_counts(self) -> Dict[str, int]:
        """How many times each site actually fired so far."""
        with self._lock:
            return dict(self._fired)

    def hit_counts(self) -> Dict[str, int]:
        """How many times each site was probed so far (fired or not)."""
        with self._lock:
            return dict(self._hits)


# -- process-wide activation ---------------------------------------------------------

_ACTIVE: Optional[FaultPlan] = None
_ENV_CHECKED = False
_INSTALL_LOCK = threading.Lock()


def install_plan(plan: Optional[FaultPlan]) -> None:
    """Arm ``plan`` process-wide (``None`` disarms)."""
    global _ACTIVE, _ENV_CHECKED
    with _INSTALL_LOCK:
        _ACTIVE = plan
        _ENV_CHECKED = True


def clear_plan() -> None:
    """Disarm any active plan and forget the environment lookup."""
    global _ACTIVE, _ENV_CHECKED
    with _INSTALL_LOCK:
        _ACTIVE = None
        _ENV_CHECKED = False


def active_plan() -> Optional[FaultPlan]:
    """The armed plan, if any (reads :data:`FAULT_PLAN_ENV` on first call)."""
    global _ACTIVE, _ENV_CHECKED
    if _ENV_CHECKED:
        return _ACTIVE
    with _INSTALL_LOCK:
        if not _ENV_CHECKED:
            text = os.environ.get(FAULT_PLAN_ENV)
            if text:
                _ACTIVE = FaultPlan.parse(text)
            _ENV_CHECKED = True
    return _ACTIVE


def maybe_fault(site: str) -> Optional[FaultSpec]:
    """Probe ``site`` against the active plan; the armed spec iff it fires."""
    plan = active_plan()
    if plan is None:
        return None
    return plan.should_fire(site)


def fault_point(site: str) -> None:
    """Probe ``site``; raise :class:`FaultError` when it fires."""
    if maybe_fault(site) is not None:
        raise FaultError(f"injected fault at site {site!r}")
