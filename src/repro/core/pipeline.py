"""End-to-end mining facade.

:class:`GatheringMiner` wires the three phases of the paper's framework
together — snapshot clustering, closed-crowd discovery and closed-gathering
detection — behind a small API:

>>> miner = GatheringMiner(GatheringParameters(mc=5, delta=300, kc=3, kp=2, mp=3))
>>> result = miner.mine(trajectory_db)
>>> result.gatherings          # list of Gathering
>>> result.closed_crowds       # list of Crowd

For streaming / periodically-updated databases, :class:`IncrementalGatheringMiner`
keeps the candidate state between batches and uses the crowd-extension and
gathering-update optimisations of Section III-C.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..clustering.snapshot import ClusterDatabase, build_cluster_database
from ..engine.registry import REGISTRY, ExecutionConfig
from ..trajectory.trajectory import TrajectoryDatabase
from .config import GatheringParameters
from .crowd import Crowd
from .crowd_discovery import CrowdDiscoveryResult, discover_closed_crowds
from .gathering import Gathering, dedupe_gatherings
from .incremental import IncrementalCrowdMiner, update_gatherings

__all__ = ["MiningResult", "GatheringMiner", "IncrementalGatheringMiner"]


@dataclass
class MiningResult:
    """Everything produced by one end-to-end mining run."""

    cluster_db: ClusterDatabase
    closed_crowds: List[Crowd]
    gatherings: List[Gathering]
    params: GatheringParameters

    def crowd_count(self) -> int:
        return len(self.closed_crowds)

    def gathering_count(self) -> int:
        return len(self.gatherings)

    def summary(self) -> Dict[str, int]:
        return {
            "snapshots": self.cluster_db.snapshot_count(),
            "clusters": len(self.cluster_db),
            "closed_crowds": len(self.closed_crowds),
            "closed_gatherings": len(self.gatherings),
        }

    def write_to(self, store) -> Dict[str, int]:
        """Persist this result into a :class:`~repro.store.PatternStore`.

        Records the mining parameters and appends the crowds and gatherings
        (idempotently, by content fingerprint); returns the newly inserted
        counts, e.g. ``{"crowds": 12, "gatherings": 3}``.
        """
        return store.write_result(self)


class GatheringMiner:
    """One-shot miner: trajectories (or clusters) in, closed gatherings out."""

    def __init__(
        self,
        params: Optional[GatheringParameters] = None,
        range_search: str = "GRID",
        detection_method: str = "TAD*",
        dbscan_method: str = "grid",
        config: Optional[ExecutionConfig] = None,
    ) -> None:
        self.params = params or GatheringParameters()
        self.range_search = range_search
        self.detection_method = detection_method
        self.dbscan_method = dbscan_method
        # No explicit config keeps the historical scalar behaviour; passing
        # ExecutionConfig() opts into the vectorized backend.
        self.config = config or ExecutionConfig(backend="python")

    def _dbscan_method(self) -> str:
        # The numpy backend vectorizes the default grid neighbour search; a
        # non-default method (e.g. "naive" for an ablation) is honoured as
        # requested regardless of backend.
        if self.config.backend == "numpy" and self.dbscan_method == "grid":
            return "numpy"
        return self.dbscan_method

    # -- phase 1 -------------------------------------------------------------
    def cluster(
        self,
        database: TrajectoryDatabase,
        timestamps: Optional[Sequence[float]] = None,
    ) -> ClusterDatabase:
        """Snapshot-cluster a trajectory database with the configured parameters.

        ``timestamps`` restricts clustering to explicit time instants (the
        streaming service clusters one window of the global time grid at a
        time); ``None`` covers the database's whole discretised time domain.
        """
        if self.config.workers > 1:
            from ..engine.parallel import build_cluster_database_parallel

            return build_cluster_database_parallel(
                database,
                timestamps=timestamps,
                eps=self.params.eps,
                min_points=self.params.min_points,
                time_step=self.params.time_step,
                method=self._dbscan_method(),
                workers=self.config.workers,
                object_shards=self.config.object_shards,
                spill_dir=self.config.spill_dir,
            )
        return build_cluster_database(
            database,
            timestamps=timestamps,
            eps=self.params.eps,
            min_points=self.params.min_points,
            time_step=self.params.time_step,
            method=self._dbscan_method(),
            object_shards=self.config.object_shards,
            spill_dir=self.config.spill_dir,
        )

    # -- phase 2 -------------------------------------------------------------
    def discover_crowds(self, cluster_db: ClusterDatabase) -> CrowdDiscoveryResult:
        """Find all closed crowds in a cluster database."""
        return discover_closed_crowds(
            cluster_db, self.params, strategy=self.range_search, config=self.config
        )

    # -- phase 3 -------------------------------------------------------------
    def detect(self, crowds: Sequence[Crowd]) -> List[Gathering]:
        """Detect closed gatherings inside each closed crowd."""
        detector = REGISTRY.create(
            "detection", self.detection_method, backend=self.config.backend,
            config=self.config,
        )
        gatherings: List[Gathering] = []
        for crowd in crowds:
            gatherings.extend(detector(crowd, self.params))
        # Branching crowds sharing a cluster prefix can re-derive the same
        # closed gathering; the global answer is a set.
        return dedupe_gatherings(gatherings)

    # -- end to end -----------------------------------------------------------
    def mine_clusters(self, cluster_db: ClusterDatabase) -> MiningResult:
        """Run phases 2 and 3 on a pre-built cluster database."""
        crowd_result = self.discover_crowds(cluster_db)
        gatherings = self.detect(crowd_result.closed_crowds)
        return MiningResult(
            cluster_db=cluster_db,
            closed_crowds=crowd_result.closed_crowds,
            gatherings=gatherings,
            params=self.params,
        )

    def mine(self, database: TrajectoryDatabase) -> MiningResult:
        """Run the full pipeline on a trajectory database."""
        cluster_db = self.cluster(database)
        return self.mine_clusters(cluster_db)


class IncrementalGatheringMiner:
    """Miner that folds in new data batches without recomputing from scratch.

    Crowd state is maintained by :class:`IncrementalCrowdMiner`; gatherings
    are re-derived per batch, reusing previously found gatherings of crowds
    that were merely extended (Theorem 2) via :func:`update_gatherings`.
    """

    def __init__(
        self,
        params: Optional[GatheringParameters] = None,
        range_search: str = "GRID",
        config: Optional[ExecutionConfig] = None,
        retain_clusters: bool = True,
    ) -> None:
        self.params = params or GatheringParameters()
        self.config = config or ExecutionConfig(backend="python")
        self.retain_clusters = retain_clusters
        self._crowd_miner = IncrementalCrowdMiner(
            params=self.params, strategy=range_search, config=self.config
        )
        # Backend-resolved TAD* detector for crowds that are new (not mere
        # extensions): the numpy backend runs the packed-matrix variant.
        self._detector = REGISTRY.create(
            "detection", "TAD*", backend=self.config.backend, config=self.config
        )
        # Gatherings keyed by the crowd they were found in.
        self._gatherings_by_crowd: Dict[Tuple, List[Gathering]] = {}
        # The merged cluster database across every batch folded in so far,
        # so each MiningResult.summary() reports global counts.  Bounded-
        # memory callers (the streaming service) disable retention: the
        # database then only ever holds the most recent batch.
        self._cluster_db = ClusterDatabase()

    # -- state ----------------------------------------------------------------
    @property
    def closed_crowds(self) -> List[Crowd]:
        return self._crowd_miner.all_closed_crowds()

    @property
    def gatherings(self) -> List[Gathering]:
        result: List[Gathering] = []
        current_keys = {crowd.keys() for crowd in self.closed_crowds}
        for crowd_key, found in self._gatherings_by_crowd.items():
            if crowd_key in current_keys:
                result.extend(found)
        # Without this, every update() re-reports a gathering once per
        # branching crowd that contains it (see dedupe_gatherings).
        return dedupe_gatherings(result)

    @property
    def cluster_db(self) -> ClusterDatabase:
        """The merged cluster database of every batch folded in so far.

        With ``retain_clusters=False`` only the most recent batch is held.
        """
        return self._cluster_db

    @property
    def last_timestamp(self) -> Optional[float]:
        """The most recent timestamp folded in, or ``None`` before any batch."""
        return self._crowd_miner.last_timestamp

    @property
    def proximity_seconds(self) -> float:
        """Accumulated proximity-graph build time over all folded batches."""
        return self._crowd_miner.proximity_seconds

    @property
    def open_candidates(self) -> List[Crowd]:
        """The frontier candidate set (Lemma 4): sequences that may yet extend."""
        return list(self._crowd_miner.open_candidates)

    # -- updates ----------------------------------------------------------------
    def update(self, new_clusters: ClusterDatabase) -> MiningResult:
        """Fold a new cluster batch in and return the refreshed global answer."""
        previous_crowds = {crowd.keys(): crowd for crowd in self.closed_crowds}
        self._crowd_miner.update(new_clusters)
        current_crowds = self._crowd_miner.all_closed_crowds()

        refreshed: Dict[Tuple, List[Gathering]] = {}
        for crowd in current_crowds:
            key = crowd.keys()
            if key in self._gatherings_by_crowd:
                # Unchanged crowd: keep its gatherings as-is.
                refreshed[key] = self._gatherings_by_crowd[key]
                continue
            old_match = self._find_extended_prefix(crowd, previous_crowds)
            if old_match is not None:
                old_crowd, old_found = old_match
                refreshed[key] = update_gatherings(
                    old_crowd, crowd, old_found, self.params
                )
            else:
                refreshed[key] = self._detector(crowd, self.params)
        self._gatherings_by_crowd = refreshed

        # Merge only unseen timestamps: the crowd sweep tolerates re-delivered
        # boundary snapshots (it skips t <= last_timestamp), so the merged
        # database must not duplicate them either.
        if not self.retain_clusters:
            self._cluster_db = ClusterDatabase()
        seen = set(self._cluster_db.timestamps())
        for timestamp in new_clusters.timestamps():
            if timestamp not in seen:
                self._cluster_db.add_snapshot(
                    timestamp, new_clusters.clusters_at(timestamp)
                )
        return MiningResult(
            cluster_db=self._cluster_db,
            closed_crowds=current_crowds,
            gatherings=self.gatherings,
            params=self.params,
        )

    # -- eviction ----------------------------------------------------------------
    def freeze_before(self, timestamp: float) -> List[Tuple[Crowd, List[Gathering]]]:
        """Evict crowds that can no longer be extended (Lemma 4).

        A closed crowd not ending at the frontier timestamp is frozen: no
        future arrival can extend it, so its crowd record and its gatherings
        are final.  This removes every crowd with ``end_time < timestamp``
        (together with its gatherings) from the live mining state and returns
        the ``(crowd, gatherings)`` pairs so the caller can flush them to a
        results store.  Calling with the current :attr:`last_timestamp`
        leaves exactly the frontier state behind — this is what bounds the
        streaming service's memory.
        """
        live: List[Crowd] = []
        frozen: List[Crowd] = []
        for crowd in self._crowd_miner.closed_crowds:
            if crowd.end_time < timestamp:
                frozen.append(crowd)
            else:
                live.append(crowd)
        self._crowd_miner.closed_crowds = live
        return [
            (crowd, self._gatherings_by_crowd.pop(crowd.keys(), []))
            for crowd in frozen
        ]

    def _find_extended_prefix(
        self, crowd: Crowd, previous: Dict[Tuple, Crowd]
    ) -> Optional[Tuple[Crowd, List[Gathering]]]:
        """Find a previously mined crowd that ``crowd`` extends, if any."""
        keys = crowd.keys()
        for old_key, old_crowd in previous.items():
            if len(old_key) < len(keys) and keys[: len(old_key)] == old_key:
                found = self._gatherings_by_crowd.get(old_key)
                if found is not None:
                    return old_crowd, found
        return None
