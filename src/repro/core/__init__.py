"""Core contribution: crowds, gatherings, TAD/TAD*, incremental mining."""

from .config import PAPER_DEFAULTS, GatheringParameters
from .crowd import Crowd, is_crowd
from .crowd_discovery import CrowdDiscoveryResult, discover_closed_crowds
from .bitvector import BitVector, build_signatures, popcount_tree, subsequence_mask
from .gathering import (
    Gathering,
    detect_gatherings,
    detect_gatherings_brute_force,
    detect_gatherings_tad,
    detect_gatherings_tad_star,
    invalid_clusters,
    is_gathering,
    participators,
)
from .range_search import (
    BruteForceRangeSearch,
    GridRangeSearch,
    ImprovedRTreeRangeSearch,
    RangeSearchStrategy,
    SimpleRTreeRangeSearch,
    STRATEGY_NAMES,
    make_range_search,
)
from .incremental import IncrementalCrowdMiner, update_gatherings
from .pipeline import GatheringMiner, IncrementalGatheringMiner, MiningResult

__all__ = [
    "PAPER_DEFAULTS",
    "GatheringParameters",
    "Crowd",
    "is_crowd",
    "CrowdDiscoveryResult",
    "discover_closed_crowds",
    "BitVector",
    "build_signatures",
    "popcount_tree",
    "subsequence_mask",
    "Gathering",
    "detect_gatherings",
    "detect_gatherings_brute_force",
    "detect_gatherings_tad",
    "detect_gatherings_tad_star",
    "invalid_clusters",
    "is_gathering",
    "participators",
    "BruteForceRangeSearch",
    "GridRangeSearch",
    "ImprovedRTreeRangeSearch",
    "RangeSearchStrategy",
    "SimpleRTreeRangeSearch",
    "STRATEGY_NAMES",
    "make_range_search",
    "IncrementalCrowdMiner",
    "update_gatherings",
    "GatheringMiner",
    "IncrementalGatheringMiner",
    "MiningResult",
]
