"""Closed-crowd discovery (Algorithm 1 of the paper).

The algorithm sweeps the timestamps of the cluster database in order,
maintaining a set ``V`` of crowd candidates (cluster sequences ending at the
previous timestamp).  At each timestamp every candidate tries to extend with
the clusters within Hausdorff distance ``delta`` of its last cluster
(delegated to a pluggable :class:`~repro.core.range_search.RangeSearchStrategy`);
candidates that cannot be extended and are long enough become closed crowds
(Lemma 1).  Clusters not appended to any candidate start new candidates.

The final candidate set (all sequences ending at the last timestamp) is kept
in the returned :class:`CrowdDiscoveryResult` so the incremental algorithm of
Section III-C can resume the sweep when a new batch of data arrives.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Set, Tuple, Union

from ..clustering.snapshot import ClusterDatabase
from ..engine.registry import ExecutionConfig
from .config import GatheringParameters
from .crowd import Crowd
from .range_search import RangeSearchStrategy, make_range_search

__all__ = ["CrowdDiscoveryResult", "discover_closed_crowds"]


@dataclass
class CrowdDiscoveryResult:
    """Output of one run (or one incremental resume) of Algorithm 1.

    Attributes
    ----------
    closed_crowds:
        All closed crowds discovered, in order of completion.
    open_candidates:
        The cluster sequences still alive when the sweep reached the last
        timestamp — exactly the sequences that Lemma 4 says may be extended
        by future data.  They include closed crowds that end at the final
        timestamp as well as shorter candidates.
    last_timestamp:
        The last timestamp processed, or ``None`` for an empty database.
    proximity_seconds:
        Wall-clock seconds spent building the cluster proximity graph when
        the frontier fast path ran (``0.0`` on the scalar and fallback
        paths); surfaced as a sub-phase of the crowd timing in
        ``repro bench``.
    """

    closed_crowds: List[Crowd] = field(default_factory=list)
    open_candidates: List[Crowd] = field(default_factory=list)
    last_timestamp: Optional[float] = None
    proximity_seconds: float = 0.0

    def crowd_count(self) -> int:
        """Number of closed crowds discovered."""
        return len(self.closed_crowds)


def _resolve_strategy(
    strategy: Union[str, RangeSearchStrategy, None],
    delta: float,
    config: Optional[ExecutionConfig] = None,
) -> RangeSearchStrategy:
    backend = config.backend if config is not None else "python"
    if strategy is None:
        return make_range_search("GRID", delta, backend=backend, config=config)
    if isinstance(strategy, str):
        return make_range_search(strategy, delta, backend=backend, config=config)
    return strategy


def discover_closed_crowds(
    cluster_db: ClusterDatabase,
    params: GatheringParameters,
    strategy: Union[str, RangeSearchStrategy, None] = "GRID",
    initial_candidates: Optional[Sequence[Crowd]] = None,
    start_after: Optional[float] = None,
    config: Optional[ExecutionConfig] = None,
) -> CrowdDiscoveryResult:
    """Discover all closed crowds in a cluster database (Algorithm 1).

    Parameters
    ----------
    cluster_db:
        The snapshot-cluster database ``C_DB``.
    params:
        Mining thresholds; only ``mc``, ``delta`` and ``kc`` are used here.
    strategy:
        Range-search scheme: a name registered in the engine's strategy
        registry (``"BRUTE"``, ``"SR"``, ``"IR"``, ``"GRID"`` built in) or a
        ready-made :class:`RangeSearchStrategy` instance.
    config:
        Optional :class:`~repro.engine.registry.ExecutionConfig` selecting
        the backend (``"python"`` reference or ``"numpy"`` columnar) and
        kernel chunk size used when ``strategy`` is given by name.
    initial_candidates:
        Crowd candidates carried over from a previous run (incremental mode).
    start_after:
        Only process timestamps strictly greater than this value (incremental
        mode); ``None`` processes the whole database.

    Returns
    -------
    A :class:`CrowdDiscoveryResult` with the closed crowds and the open
    candidate set for later incremental extension.
    """
    searcher = _resolve_strategy(strategy, params.delta, config)
    if getattr(searcher, "supports_proximity_graph", False):
        # Columnar strategies run the frontier fast path: the full
        # cluster-to-cluster proximity graph of consecutive snapshots is
        # built in one columnar pass, then candidates propagate over its
        # CSR adjacency — no per-timestamp searches or index caches at all.
        # Exact label parity with the scalar loop below is property-tested.
        from ..engine.kernels import DEFAULT_CHUNK_SIZE
        from ..engine.proximity import build_proximity_graph
        from ..engine.sweep import sweep_crowds_frontier

        graph = build_proximity_graph(
            cluster_db,
            params,
            timestamps=[
                t
                for t in cluster_db.timestamps()
                if start_after is None or t > start_after
            ],
            chunk_size=getattr(searcher, "chunk_size", DEFAULT_CHUNK_SIZE),
        )
        return sweep_crowds_frontier(
            graph, params, initial_candidates=initial_candidates
        )
    frames = getattr(cluster_db, "frames", None)
    if frames is not None and hasattr(searcher, "seed_frames"):
        # Batched phase 1 already holds every snapshot as a columnar frame;
        # seeding the strategy's cache means the sweep's first queries are
        # frame-resident too and no snapshot is ever re-packed from objects.
        searcher.seed_frames(frames)
    if hasattr(searcher, "search_many"):
        # Batch-capable strategies without proximity-graph support run the
        # arena-based fallback: one batched search per timestamp, candidates
        # as rows of an index arena instead of per-object Crowd tuples.
        from ..engine.sweep import sweep_crowds_batched

        return sweep_crowds_batched(
            cluster_db,
            params,
            searcher,
            initial_candidates=initial_candidates,
            start_after=start_after,
        )

    closed: List[Crowd] = []
    candidates: List[Crowd] = list(initial_candidates) if initial_candidates else []

    timestamps = [
        t for t in cluster_db.timestamps() if start_after is None or t > start_after
    ]
    last_processed: Optional[float] = None

    for t in timestamps:
        previous = last_processed
        last_processed = t
        if previous is not None:
            # The sweep only ever searches the current snapshot: per-timestamp
            # indexes built for earlier snapshots can never be queried again,
            # so the strategy's cache stays O(1) instead of growing with the
            # sweep (grid indexes / R-trees of every processed timestamp).
            searcher.drop_before(t)
        # Only clusters meeting the support threshold can take part in a crowd.
        clusters_now = [c for c in cluster_db.clusters_at(t) if len(c) >= params.mc]
        if not clusters_now:
            # An empty snapshot can neither extend nor start a candidate:
            # close the long ones, drop the rest, and skip the range search
            # (no strategy query is constructed at all).
            for candidate in candidates:
                if candidate.lifetime >= params.kc:
                    closed.append(candidate)
            candidates = []
            continue
        appended_keys: Set[Tuple[float, int]] = set()
        next_candidates: List[Crowd] = []
        # Several candidates can share the same last cluster (branching); the
        # range search only depends on that cluster, so memoise per timestamp.
        search_memo: dict = {}

        for candidate in candidates:
            last_cluster = candidate.clusters[-1]
            memo_key = last_cluster.key()
            if search_memo.get(memo_key) is not None:
                matches = search_memo[memo_key]
            else:
                matches = searcher.search(last_cluster, t, clusters_now)
                search_memo[memo_key] = matches
            if matches:
                appended_keys.update(match.key() for match in matches)
                for match in matches:
                    next_candidates.append(candidate.append(match))
            elif candidate.lifetime >= params.kc:
                # Cannot be extended: by Lemma 1 it is a closed crowd.
                closed.append(candidate)

        # Clusters that did not extend any candidate start new candidates.
        for cluster in clusters_now:
            if cluster.key() not in appended_keys:
                next_candidates.append(Crowd((cluster,)))

        candidates = next_candidates

    # Sequences still alive at the end of the sweep: the long ones are closed
    # crowds (nothing follows them yet); all of them stay available for
    # incremental extension.
    for candidate in candidates:
        if candidate.lifetime >= params.kc:
            closed.append(candidate)

    if last_processed is None and initial_candidates:
        # Nothing new was processed; keep the caller's candidates untouched.
        candidates = list(initial_candidates)

    return CrowdDiscoveryResult(
        closed_crowds=closed,
        open_candidates=candidates,
        last_timestamp=last_processed,
    )
