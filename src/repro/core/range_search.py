"""Range-search strategies for crowd discovery.

``RangeSearch(c, C_t, delta)`` must return the clusters of ``C_t`` whose
Hausdorff distance to the query cluster ``c`` is at most ``delta``.  The
paper compares three pruning schemes on top of the brute-force approach:

* **BRUTE** — evaluate the (thresholded) Hausdorff distance against every
  cluster.
* **SR** — index the clusters' MBRs in an R-tree and run a window query with
  the query MBR enlarged by ``delta`` (Lemma 2), then refine survivors with
  the exact distance check.
* **IR** — same R-tree, but the node/entry test requires intersection with
  all four enlarged side windows of the query MBR (the tighter ``d_side``
  bound, Lemma 3) before refinement.
* **GRID** — the grid index of Section III-A-2 with affect-region pruning and
  common-cell refinement; no exact Hausdorff computation is needed.

Each strategy builds one index per timestamp lazily and caches it, because a
single timestamp serves range searches from many crowd candidates.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, List, Sequence

from ..clustering.snapshot import SnapshotCluster
from ..index.grid import GridIndex
from ..index.rtree import RTree, RTreeEntry

__all__ = [
    "RangeSearchStrategy",
    "BruteForceRangeSearch",
    "SimpleRTreeRangeSearch",
    "ImprovedRTreeRangeSearch",
    "GridRangeSearch",
    "make_range_search",
    "STRATEGY_NAMES",
]


class RangeSearchStrategy(ABC):
    """Finds clusters within Hausdorff distance ``delta`` of a query cluster."""

    #: Short name used in benchmark output (SR / IR / GRID / BRUTE).
    name = "ABSTRACT"

    #: Whether :func:`~repro.core.crowd_discovery.discover_closed_crowds`
    #: may replace this strategy's per-timestamp searches with the
    #: precomputed proximity-graph frontier sweep (the columnar backend
    #: opts in; scalar strategies stay the independent parity reference).
    supports_proximity_graph = False

    def __init__(self, delta: float) -> None:
        if delta <= 0:
            raise ValueError("delta must be positive")
        self.delta = float(delta)
        #: How many candidate clusters survived pruning (exact checks done);
        #: useful for analysing pruning power in ablation benches.
        self.refinement_count = 0

    @abstractmethod
    def search(
        self, query: SnapshotCluster, timestamp: float, clusters: Sequence[SnapshotCluster]
    ) -> List[SnapshotCluster]:
        """Clusters of ``clusters`` (at ``timestamp``) within ``delta`` of ``query``."""

    def drop_before(self, timestamp: float) -> None:
        """Discard per-timestamp cached state older than ``timestamp``.

        The crowd sweep calls this as it moves forward so index caches stay
        bounded by the working set (the current snapshot, plus the previous
        one for query-side columns) instead of growing with the sweep.  The
        base implementation is a no-op for strategies that cache nothing.
        """

    def reset_statistics(self) -> None:
        self.refinement_count = 0


class BruteForceRangeSearch(RangeSearchStrategy):
    """No pruning: check the Hausdorff threshold against every cluster."""

    name = "BRUTE"

    def search(self, query, timestamp, clusters):
        self.refinement_count += len(clusters)
        return [c for c in clusters if query.within_hausdorff(c, self.delta)]


class _RTreeCache:
    """Shared lazy construction of one R-tree per timestamp."""

    def __init__(self) -> None:
        self._trees: Dict[float, RTree] = {}
        self._sources: Dict[float, int] = {}

    def tree_for(self, timestamp: float, clusters: Sequence[SnapshotCluster]) -> RTree:
        fingerprint = id(clusters) if isinstance(clusters, list) else hash(tuple(c.key() for c in clusters))
        if timestamp in self._trees and self._sources.get(timestamp) == len(clusters):
            return self._trees[timestamp]
        tree = RTree.build(
            (RTreeEntry(mbr=c.mbr, payload=c) for c in clusters), max_entries=8
        )
        self._trees[timestamp] = tree
        self._sources[timestamp] = len(clusters)
        return tree

    def drop_before(self, timestamp: float) -> None:
        """Evict trees of timestamps strictly before ``timestamp``."""
        for key in [t for t in self._trees if t < timestamp]:
            del self._trees[key]
            self._sources.pop(key, None)


class SimpleRTreeRangeSearch(RangeSearchStrategy):
    """SR: prune with ``d_min(MBR, MBR) <= delta`` (Lemma 2), then refine."""

    name = "SR"

    def __init__(self, delta: float) -> None:
        super().__init__(delta)
        self._cache = _RTreeCache()

    def search(self, query, timestamp, clusters):
        if not clusters:
            return []
        tree = self._cache.tree_for(timestamp, clusters)
        window = query.mbr.expand(self.delta)
        candidates = [entry.payload for entry in tree.window_query(window)]
        self.refinement_count += len(candidates)
        return [c for c in candidates if query.within_hausdorff(c, self.delta)]

    def drop_before(self, timestamp: float) -> None:
        """Evict R-trees of timestamps the sweep has moved past."""
        self._cache.drop_before(timestamp)


class ImprovedRTreeRangeSearch(RangeSearchStrategy):
    """IR: prune with the tighter ``d_side`` bound (Lemma 3), then refine."""

    name = "IR"

    def __init__(self, delta: float) -> None:
        super().__init__(delta)
        self._cache = _RTreeCache()

    def search(self, query, timestamp, clusters):
        if not clusters:
            return []
        tree = self._cache.tree_for(timestamp, clusters)
        windows = query.mbr.expanded_side_windows(self.delta)
        candidates = [entry.payload for entry in tree.multi_window_query(windows)]
        self.refinement_count += len(candidates)
        return [c for c in candidates if query.within_hausdorff(c, self.delta)]

    def drop_before(self, timestamp: float) -> None:
        """Evict R-trees of timestamps the sweep has moved past."""
        self._cache.drop_before(timestamp)


class GridRangeSearch(RangeSearchStrategy):
    """GRID: affect-region pruning plus common-cell refinement (no exact d_H)."""

    name = "GRID"

    def __init__(self, delta: float) -> None:
        super().__init__(delta)
        self._indexes: Dict[float, GridIndex] = {}
        self._sources: Dict[float, int] = {}

    def _index_for(self, timestamp: float, clusters: Sequence[SnapshotCluster]) -> GridIndex:
        if timestamp in self._indexes and self._sources.get(timestamp) == len(clusters):
            return self._indexes[timestamp]
        # Deliberately the scalar build: the "python" backend stays a fully
        # independent reference so backend-parity tests are differential.
        index = GridIndex.build(clusters, self.delta)
        self._indexes[timestamp] = index
        self._sources[timestamp] = len(clusters)
        return index

    def search(self, query, timestamp, clusters):
        if not clusters:
            return []
        index = self._index_for(timestamp, clusters)
        query_cells = index.query_cells_of_points(query.points())
        candidates = index.candidates_for(query_cells.keys())
        self.refinement_count += len(candidates)
        return [c for c in candidates if index.refine(query_cells, c)]

    def drop_before(self, timestamp: float) -> None:
        """Evict grid indexes of timestamps the sweep has moved past."""
        for key in [t for t in self._indexes if t < timestamp]:
            del self._indexes[key]
            self._sources.pop(key, None)


STRATEGY_NAMES = ("BRUTE", "SR", "IR", "GRID")


def make_range_search(
    name: str, delta: float, backend: str = "python", config=None
) -> RangeSearchStrategy:
    """Factory used by the pipeline and the benchmark harness.

    Resolves through the engine's strategy registry, so names registered at
    runtime (and the vectorized ``"numpy"`` backend) are available alongside
    the four built-in schemes.
    """
    from ..engine.registry import REGISTRY

    return REGISTRY.create(
        "range_search", name, backend=backend, delta=delta, config=config
    )
