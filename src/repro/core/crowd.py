"""The crowd pattern (Definition 2) and helpers to validate it.

A crowd is a sequence of snapshot clusters at *consecutive* timestamps such
that every cluster has at least ``m_c`` members, consecutive clusters are at
Hausdorff distance at most ``delta``, and the sequence spans at least ``k_c``
timestamps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Sequence, Set, Tuple

from ..clustering.snapshot import SnapshotCluster

__all__ = ["Crowd", "is_crowd"]


@dataclass(frozen=True)
class Crowd:
    """A sequence of snapshot clusters at consecutive timestamps."""

    clusters: Tuple[SnapshotCluster, ...]

    def __post_init__(self) -> None:
        if not self.clusters:
            raise ValueError("a crowd must contain at least one cluster")
        object.__setattr__(self, "clusters", tuple(self.clusters))

    # -- sequence protocol -----------------------------------------------------
    def __len__(self) -> int:
        return len(self.clusters)

    def __iter__(self) -> Iterator[SnapshotCluster]:
        return iter(self.clusters)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return Crowd(self.clusters[index])
        return self.clusters[index]

    # -- paper notation --------------------------------------------------------
    @property
    def lifetime(self) -> int:
        """``Cr.tau`` — the number of timestamps the crowd spans."""
        return len(self.clusters)

    @property
    def start_time(self) -> float:
        return self.clusters[0].timestamp

    @property
    def end_time(self) -> float:
        return self.clusters[-1].timestamp

    def timestamps(self) -> List[float]:
        return [cluster.timestamp for cluster in self.clusters]

    def object_ids(self) -> Set[int]:
        """All objects appearing in at least one cluster of the crowd."""
        ids: Set[int] = set()
        for cluster in self.clusters:
            ids.update(cluster.object_ids())
        return ids

    def occurrences(self) -> Dict[int, int]:
        """``|Cr(o)|`` for every object ``o`` appearing in the crowd."""
        counts: Dict[int, int] = {}
        for cluster in self.clusters:
            for object_id in cluster.object_ids():
                counts[object_id] = counts.get(object_id, 0) + 1
        return counts

    def participators(self, kp: int) -> Set[int]:
        """``Par(Cr)`` — objects appearing in at least ``kp`` clusters."""
        return {oid for oid, count in self.occurrences().items() if count >= kp}

    def append(self, cluster: SnapshotCluster) -> "Crowd":
        """Return a new crowd with one more cluster appended."""
        return Crowd(self.clusters + (cluster,))

    def subsequence(self, start: int, end: int) -> "Crowd":
        """Contiguous sub-crowd ``[start, end)`` by positional index."""
        if start < 0 or end > len(self.clusters) or start >= end:
            raise ValueError(f"invalid subsequence bounds [{start}, {end})")
        return Crowd(self.clusters[start:end])

    def identities(self) -> Tuple[Tuple[float, int, frozenset], ...]:
        """Strong per-cluster identity: timestamp, cluster id and members."""
        return tuple(
            (cluster.timestamp, cluster.cluster_id, cluster.object_ids())
            for cluster in self.clusters
        )

    def contains_subsequence(self, other: "Crowd") -> bool:
        """True if ``other`` is a contiguous subsequence of this crowd."""
        keys = list(self.identities())
        other_keys = list(other.identities())
        n, m = len(keys), len(other_keys)
        if m > n:
            return False
        return any(keys[i : i + m] == other_keys for i in range(n - m + 1))

    def keys(self) -> Tuple[Tuple[float, int], ...]:
        """Hashable identity of the crowd (sequence of cluster keys)."""
        return tuple(cluster.key() for cluster in self.clusters)


def is_crowd(
    clusters: Sequence[SnapshotCluster],
    mc: int,
    delta: float,
    kc: int,
    *,
    expected_step: float = None,
) -> bool:
    """Check Definition 2 directly (used in tests and the brute-force baselines).

    Parameters
    ----------
    clusters:
        Candidate sequence of snapshot clusters, ordered by time.
    mc, delta, kc:
        Crowd support, variation and lifetime thresholds.
    expected_step:
        If given, consecutive clusters must be exactly this far apart in time
        (i.e. the sequence covers consecutive timestamps of the discretised
        domain).  If ``None``, temporal consecutiveness is not checked.
    """
    if len(clusters) < kc:
        return False
    if any(len(cluster) < mc for cluster in clusters):
        return False
    for current, following in zip(clusters, clusters[1:]):
        if expected_step is not None:
            if abs((following.timestamp - current.timestamp) - expected_step) > 1e-9:
                return False
        elif following.timestamp <= current.timestamp:
            return False
        if not current.within_hausdorff(following, delta):
            return False
    return True
