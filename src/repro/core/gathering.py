"""Gathering detection: brute force, Test-and-Divide (TAD) and TAD*.

A gathering (Definition 4) is a crowd in which every snapshot cluster
contains at least ``m_p`` participators — objects that appear in at least
``k_p`` clusters of the crowd.  Because the property is *not* downward
closed, the paper detects closed gatherings within each closed crowd with the
Test-and-Divide algorithm (Algorithm 2):

1. **Test** whether the crowd is a gathering.  If yes it is closed
   (Theorem 1) and returned.
2. Otherwise **divide** the crowd at its invalid clusters (those with fewer
   than ``m_p`` participators) and recurse on each piece that is still long
   enough to be a crowd.

TAD* performs the same recursion entirely on bit-vector signatures: the BVS
of every object is built once, sub-crowds are selected with masks, and
occurrence counting uses the mask-based Hamming weight.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .bitvector import BitVector, build_signatures
from .config import GatheringParameters
from .crowd import Crowd

__all__ = [
    "Gathering",
    "participators",
    "invalid_clusters",
    "is_gathering",
    "detect_gatherings_brute_force",
    "detect_gatherings_tad",
    "detect_gatherings_tad_star",
    "detect_gatherings_tad_star_packed",
    "detect_gatherings",
    "dedupe_gatherings",
]


@dataclass(frozen=True)
class Gathering:
    """A closed gathering: the crowd plus its participator set."""

    crowd: Crowd
    participator_ids: frozenset

    @property
    def lifetime(self) -> int:
        """Number of timestamps the gathering spans (``Cr.tau``)."""
        return self.crowd.lifetime

    @property
    def start_time(self) -> float:
        """Timestamp of the first cluster."""
        return self.crowd.start_time

    @property
    def end_time(self) -> float:
        """Timestamp of the last cluster."""
        return self.crowd.end_time

    def keys(self) -> Tuple[Tuple[float, int], ...]:
        """Hashable identity of the gathering (its crowd's cluster keys)."""
        return self.crowd.keys()

    def __len__(self) -> int:
        return len(self.crowd)


# ---------------------------------------------------------------------------
# Plain (non bit-vector) primitives
# ---------------------------------------------------------------------------
def participators(crowd: Crowd, kp: int) -> Set[int]:
    """``Par(Cr)`` — objects appearing in at least ``kp`` clusters of the crowd."""
    return crowd.participators(kp)


def invalid_clusters(crowd: Crowd, kp: int, mp: int) -> List[int]:
    """Positional indices of clusters with fewer than ``mp`` participators."""
    par = participators(crowd, kp)
    bad = []
    for index, cluster in enumerate(crowd):
        count = sum(1 for oid in cluster.object_ids() if oid in par)
        if count < mp:
            bad.append(index)
    return bad


def is_gathering(crowd: Crowd, kp: int, mp: int) -> bool:
    """Definition 4: every cluster holds at least ``mp`` participators."""
    return not invalid_clusters(crowd, kp, mp)


def _split_on_invalid(length: int, bad: Sequence[int]) -> List[Tuple[int, int]]:
    """Maximal runs ``[start, end)`` of positions avoiding the bad indices."""
    bad_set = set(bad)
    pieces = []
    start = None
    for index in range(length):
        if index in bad_set:
            if start is not None:
                pieces.append((start, index))
                start = None
        elif start is None:
            start = index
    if start is not None:
        pieces.append((start, length))
    return pieces


# ---------------------------------------------------------------------------
# Brute-force baseline
# ---------------------------------------------------------------------------
def detect_gatherings_brute_force(
    crowd: Crowd, params: GatheringParameters
) -> List[Gathering]:
    """Enumerate contiguous sub-crowds from longest to shortest.

    A sub-crowd is reported when it is a gathering and is not contained in a
    gathering already reported (so the output is closed within the given
    crowd).  This is the baseline the paper measures TAD against.
    """
    n = crowd.lifetime
    found: List[Crowd] = []
    for length in range(n, params.kc - 1, -1):
        for start in range(0, n - length + 1):
            candidate = crowd.subsequence(start, start + length)
            if any(existing.contains_subsequence(candidate) for existing in found):
                continue
            if is_gathering(candidate, params.kp, params.mp):
                found.append(candidate)
    return [
        Gathering(crowd=c, participator_ids=frozenset(participators(c, params.kp)))
        for c in found
    ]


# ---------------------------------------------------------------------------
# TAD — Algorithm 2 with plain counting
# ---------------------------------------------------------------------------
def detect_gatherings_tad(crowd: Crowd, params: GatheringParameters) -> List[Gathering]:
    """Test-and-Divide with straightforward occurrence counting."""
    results: List[Gathering] = []
    stack: List[Crowd] = [crowd]
    while stack:
        current = stack.pop()
        if current.lifetime < params.kc:
            continue
        bad = invalid_clusters(current, params.kp, params.mp)
        if not bad:
            results.append(
                Gathering(
                    crowd=current,
                    participator_ids=frozenset(participators(current, params.kp)),
                )
            )
            continue
        for start, end in _split_on_invalid(current.lifetime, bad):
            if end - start >= params.kc:
                stack.append(current.subsequence(start, end))
    return results


# ---------------------------------------------------------------------------
# TAD* — Algorithm 2 on bit-vector signatures
# ---------------------------------------------------------------------------
def _mask_invalid_positions(
    signature_values: Dict[int, int],
    cluster_members: Sequence[frozenset],
    start: int,
    end: int,
    mask: int,
    kp: int,
    mp: int,
    candidates: Sequence[int],
) -> Tuple[List[int], Set[int]]:
    """Invalid positions (within the masked sub-crowd) and its participators.

    Works on raw integers so the inner loop is a single AND + popcount per
    object, exactly the operation TAD* performs on its bit-vector signatures.
    Only ``candidates`` (the parent sub-crowd's participators) are scanned —
    a non-participator of a crowd can never be a participator of one of its
    sub-crowds.
    """
    par: Set[int] = set()
    for object_id in candidates:
        if (signature_values[object_id] & mask).bit_count() >= kp:
            par.add(object_id)
    bad = []
    for position in range(start, end):
        members = cluster_members[position]
        count = sum(1 for oid in members if oid in par)
        if count < mp:
            bad.append(position)
    return bad, par


def detect_gatherings_tad_star(
    crowd: Crowd,
    params: GatheringParameters,
    signatures: Optional[Dict[int, BitVector]] = None,
) -> List[Gathering]:
    """Test-and-Divide implemented with bit-vector signatures (TAD*).

    The signatures are built once (or supplied by the caller, as the
    incremental gathering-update does) and reused by every recursion level;
    sub-crowds are represented as masks over them.
    """
    width = crowd.lifetime
    if signatures is None:
        signatures = build_signatures(crowd)
    signature_values = {oid: bv.value for oid, bv in signatures.items()}
    cluster_members = [cluster.object_ids() for cluster in crowd]

    results: List[Gathering] = []
    # Each work item is the contiguous index range [start, end) it covers,
    # plus the objects that can still be participators inside it.
    all_objects = tuple(signature_values)
    stack: List[Tuple[int, int, Tuple[int, ...]]] = [(0, width, all_objects)]
    while stack:
        start, end, candidates = stack.pop()
        if end - start < params.kc:
            continue
        mask = ((1 << end) - 1) ^ ((1 << start) - 1)
        bad, par = _mask_invalid_positions(
            signature_values,
            cluster_members,
            start,
            end,
            mask,
            params.kp,
            params.mp,
            candidates,
        )
        if not bad:
            sub = crowd.subsequence(start, end)
            results.append(Gathering(crowd=sub, participator_ids=frozenset(par)))
            continue
        # Split the current range at the invalid positions; children only need
        # to re-examine this range's participators.
        surviving = tuple(par)
        bad_set = set(bad)
        run_start = None
        for position in range(start, end):
            if position in bad_set:
                if run_start is not None:
                    stack.append((run_start, position, surviving))
                    run_start = None
            elif run_start is None:
                run_start = position
        if run_start is not None:
            stack.append((run_start, end, surviving))
    return results


#: Below this many total memberships (sum of cluster sizes) the packed TAD*
#: delegates to the scalar variant — array fixed costs dominate there.
_PACKED_MIN_MEMBERSHIPS = 2048


def detect_gatherings_tad_star_packed(
    crowd: Crowd,
    params: GatheringParameters,
    matrix=None,
) -> List[Gathering]:
    """Test-and-Divide on a packed ``uint64`` membership matrix (TAD*, numpy).

    The columnar twin of :func:`detect_gatherings_tad_star`: the bit-vector
    signatures of every object live as rows of one
    :class:`~repro.engine.bitmatrix.MembershipMatrix` (built once, or
    supplied by the caller), sub-crowds are ``[start, end)`` bit ranges over
    it, and both TAD* counting steps — per-object occurrences and
    per-cluster participator support — run as vectorized popcount / column
    reductions instead of per-object loops.  Output (gatherings *and* their
    order) is identical to the scalar TAD*.
    """
    width = crowd.lifetime
    if matrix is None:
        if sum(len(cluster) for cluster in crowd) < _PACKED_MIN_MEMBERSHIPS:
            # Tiny crowds: the scalar big-int TAD* beats the fixed cost of
            # building and masking a matrix.  Results are identical either
            # way, so this is purely a kernel choice.
            return detect_gatherings_tad_star(crowd, params)
        from ..engine.bitmatrix import MembershipMatrix

        matrix = MembershipMatrix.from_crowd(crowd)

    results: List[Gathering] = []
    # Work items mirror the scalar TAD*: a contiguous index range plus the
    # rows that can still be participators inside it (a sub-crowd can never
    # gain participators its parent lacked).
    stack = [(0, width, matrix.all_rows())]
    while stack:
        start, end, rows = stack.pop()
        if end - start < params.kc:
            continue
        par_rows = matrix.participator_rows(rows, start, end, params.kp)
        support = matrix.position_support(par_rows, start, end)
        bad = [start + offset for offset, count in enumerate(support) if count < params.mp]
        if not bad:
            results.append(
                Gathering(
                    crowd=crowd.subsequence(start, end),
                    participator_ids=matrix.object_ids_of(par_rows),
                )
            )
            continue
        bad_set = set(bad)
        run_start = None
        for position in range(start, end):
            if position in bad_set:
                if run_start is not None:
                    stack.append((run_start, position, par_rows))
                    run_start = None
            elif run_start is None:
                run_start = position
        if run_start is not None:
            stack.append((run_start, end, par_rows))
    return results


def dedupe_gatherings(gatherings: Sequence[Gathering]) -> List[Gathering]:
    """Drop duplicate gatherings, keeping first-seen order.

    Two closed crowds that branch from a shared cluster prefix (several
    clusters within ``delta`` of one candidate's last cluster) can each
    yield the *same* closed gathering inside that prefix, so collecting
    per-crowd detection output naively reports it once per crowd.  Identity
    is the gathering's cluster-key sequence plus its participator set —
    exactly the pair that makes two gatherings indistinguishable.
    """
    seen = set()
    unique: List[Gathering] = []
    for gathering in gatherings:
        key = (gathering.keys(), gathering.participator_ids)
        if key not in seen:
            seen.add(key)
            unique.append(gathering)
    return unique


def detect_gatherings(
    crowd: Crowd, params: GatheringParameters, method: str = "TAD*"
) -> List[Gathering]:
    """Dispatch helper used by the pipeline and the benchmarks."""
    normalized = method.upper()
    if normalized in ("TAD*-PACKED", "TADSTAR-PACKED", "TAD_STAR_PACKED"):
        return detect_gatherings_tad_star_packed(crowd, params)
    if normalized in ("TAD*", "TADSTAR", "TAD_STAR"):
        return detect_gatherings_tad_star(crowd, params)
    if normalized == "TAD":
        return detect_gatherings_tad(crowd, params)
    if normalized in ("BRUTE", "BRUTE-FORCE", "BRUTEFORCE"):
        return detect_gatherings_brute_force(crowd, params)
    raise ValueError(f"unknown gathering-detection method {method!r}")
