"""Sharded batch mining: partition the snapshot range, mine, stitch, store.

Large inputs are mined as parallel shards:

1. **Partition** — the discretised snapshot range is split into ``shards``
   contiguous, near-equal timestamp chunks.  Each chunk's trajectory slice
   is padded by ``overlap`` grid steps on both sides so boundary snapshots
   interpolate from the same neighbouring samples an unsharded run would
   see.
2. **Mine** — phase 1 (snapshot clustering, the dominant cost) runs for all
   shards concurrently on the engine's multiprocessing machinery
   (:func:`repro.engine.parallel.build_cluster_databases_sharded`).
3. **Stitch** — crowds cross shard boundaries, so phase 2 folds the shard
   cluster databases *in time order* into an
   :class:`~repro.core.incremental.IncrementalCrowdMiner`: by Lemma 4 the
   open candidate set carried across each boundary is exactly the state a
   continuous Algorithm-1 sweep would have there, which makes the stitched
   crowd set identical to an unsharded run's.  Phase 3 (TAD*) then runs
   once over the stitched crowds.
4. **Store** — optionally, the result lands in a
   :class:`~repro.store.PatternStore`; fingerprint-keyed inserts make this
   idempotent, so several drivers can append to one database.

Exactness caveat: a shard only sees trajectory samples within its padded
range, so feeds with sampling gaps larger than ``overlap`` grid steps can
interpolate differently at shard boundaries.  Raise ``overlap`` to cover
the worst sampling gap (the fleet simulator and any per-step feed need the
default of 1).  This caveat is pinned by an executable regression test
(``tests/core/test_shard_overlap_caveat.py``): if the divergence ever
disappears, that test fails, flagging that this paragraph needs updating.

Orthogonal to the snapshot axis, the execution config's ``object_shards``
splits each shard's phase-1 interpolation along the object-id axis and
``spill_dir`` moves its clustered arena out of core — both leave the mined
answers bit-identical (see :mod:`repro.engine.arena`), so the driver
composes all three scale axes freely.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..clustering.snapshot import ClusterDatabase
from ..engine.registry import ExecutionConfig
from ..trajectory.trajectory import TrajectoryDatabase
from .config import GatheringParameters
from .incremental import IncrementalCrowdMiner
from .pipeline import GatheringMiner, MiningResult

__all__ = ["ShardSpec", "ShardReport", "ShardedMiningDriver", "partition_timestamps"]


def partition_timestamps(
    timestamps: Sequence[float], shards: int
) -> List[Tuple[float, ...]]:
    """Split a sorted timestamp list into ``shards`` contiguous near-equal chunks.

    The first ``len(timestamps) % shards`` chunks get one extra timestamp;
    empty chunks (more shards than timestamps) are dropped.
    """
    if shards < 1:
        raise ValueError("shards must be at least 1")
    timestamps = list(timestamps)
    count = len(timestamps)
    base, extra = divmod(count, shards)
    chunks: List[Tuple[float, ...]] = []
    start = 0
    for index in range(shards):
        size = base + (1 if index < extra else 0)
        if size == 0:
            continue
        chunks.append(tuple(timestamps[start : start + size]))
        start += size
    return chunks


@dataclass(frozen=True)
class ShardSpec:
    """One planned shard: its timestamp chunk and padded slice bounds."""

    index: int
    timestamps: Tuple[float, ...]
    slice_start: float
    slice_end: float

    @property
    def start_time(self) -> float:
        """First snapshot timestamp of the shard."""
        return self.timestamps[0]

    @property
    def end_time(self) -> float:
        """Last snapshot timestamp of the shard."""
        return self.timestamps[-1]


@dataclass
class ShardReport:
    """What one sharded run did — per-phase timings and stitch counters.

    ``carried_candidates`` records, per shard boundary, how many open crowd
    candidates were carried across to be stitched (Lemma 4); it is the
    direct measure of cross-boundary work a naive per-shard run would have
    gotten wrong.
    """

    shards: int = 0
    snapshots: int = 0
    cluster_seconds: float = 0.0
    stitch_seconds: float = 0.0
    #: Sub-phase of ``stitch_seconds``: total proximity-graph build time
    #: across the per-shard frontier sweeps (0.0 on scalar backends).
    proximity_seconds: float = 0.0
    detect_seconds: float = 0.0
    carried_candidates: List[int] = field(default_factory=list)
    store_written: Optional[Dict[str, int]] = None

    def as_dict(self) -> Dict[str, Any]:
        """Plain-dict view for JSON reports and benchmark extra_info."""
        return {
            "shards": self.shards,
            "snapshots": self.snapshots,
            "cluster_seconds": self.cluster_seconds,
            "stitch_seconds": self.stitch_seconds,
            "proximity_seconds": self.proximity_seconds,
            "detect_seconds": self.detect_seconds,
            "carried_candidates": list(self.carried_candidates),
            "store_written": self.store_written,
        }


class ShardedMiningDriver:
    """Mine a trajectory database as parallel shards with exact stitching.

    Parameters
    ----------
    params, range_search, detection_method, config:
        Exactly the knobs of :class:`~repro.core.pipeline.GatheringMiner`,
        which this driver matches result-for-result.  The config's
        ``object_shards`` and ``spill_dir`` apply to each shard's phase-1
        pass (object-axis interpolation groups and the out-of-core arena;
        both answer-preserving).
    shards:
        Number of contiguous snapshot-range shards.  By default the phase-1
        pool runs one process per shard; an explicit
        ``ExecutionConfig(workers=N)`` with ``N > 1`` caps the pool at
        ``N`` processes instead (shards then queue), so a machine-wide
        worker budget is respected even with many shards.
    overlap:
        Trajectory-slice padding per shard boundary, in grid steps (see the
        module docstring for when to raise it).
    """

    def __init__(
        self,
        params: Optional[GatheringParameters] = None,
        shards: int = 2,
        overlap: int = 1,
        range_search: str = "GRID",
        detection_method: str = "TAD*",
        config: Optional[ExecutionConfig] = None,
    ) -> None:
        if shards < 1:
            raise ValueError("shards must be at least 1")
        if overlap < 0:
            raise ValueError("overlap must be non-negative")
        self.params = params or GatheringParameters()
        self.shards = int(shards)
        self.overlap = int(overlap)
        self.range_search = range_search
        self.detection_method = detection_method
        self.config = config or ExecutionConfig(backend="python")
        #: Report of the most recent :meth:`mine` call.
        self.last_report: Optional[ShardReport] = None

    # -- planning ----------------------------------------------------------------
    def plan(self, database: TrajectoryDatabase) -> List[ShardSpec]:
        """Partition the database's snapshot range into shard specs."""
        timestamps = database.timestamps(step=self.params.time_step)
        pad = self.overlap * self.params.time_step
        return [
            ShardSpec(
                index=index,
                timestamps=chunk,
                slice_start=chunk[0] - pad,
                slice_end=chunk[-1] + pad,
            )
            for index, chunk in enumerate(partition_timestamps(timestamps, self.shards))
        ]

    # -- mining ------------------------------------------------------------------
    def mine(self, database: TrajectoryDatabase, store=None) -> MiningResult:
        """Run the sharded pipeline; optionally sink the result into ``store``.

        Returns a :class:`~repro.core.pipeline.MiningResult` equal (as a set
        of crowds and gatherings) to ``GatheringMiner(...).mine(database)``;
        :attr:`last_report` holds the per-phase timings of this run.
        """
        from ..engine.parallel import build_cluster_databases_sharded

        miner = GatheringMiner(
            self.params,
            range_search=self.range_search,
            detection_method=self.detection_method,
            config=self.config,
        )
        specs = self.plan(database)
        report = ShardReport(shards=len(specs))

        # Phase 1: cluster the shards concurrently — one process per shard,
        # unless the execution config caps the worker budget.
        if self.config.workers > 1:
            pool_workers = min(self.config.workers, len(specs))
        else:
            pool_workers = len(specs)
        started = time.perf_counter()
        shard_dbs = build_cluster_databases_sharded(
            database,
            [spec.timestamps for spec in specs],
            eps=self.params.eps,
            min_points=self.params.min_points,
            overlap=self.overlap * self.params.time_step,
            method=miner._dbscan_method(),
            workers=pool_workers,
            object_shards=self.config.object_shards,
            spill_dir=self.config.spill_dir,
        )
        report.cluster_seconds = time.perf_counter() - started

        # Phases 2: stitch the shard sweeps via the incremental candidate
        # carry-over, merging the shard databases into the global C_DB.
        started = time.perf_counter()
        crowd_miner = IncrementalCrowdMiner(
            params=self.params, strategy=self.range_search, config=self.config
        )
        merged = ClusterDatabase()
        for shard_db in shard_dbs:
            report.snapshots += shard_db.snapshot_count()
            crowd_miner.update(shard_db)
            report.carried_candidates.append(len(crowd_miner.open_candidates))
            merged.merge(shard_db)
        closed_crowds = crowd_miner.all_closed_crowds()
        report.stitch_seconds = time.perf_counter() - started
        report.proximity_seconds = crowd_miner.proximity_seconds

        # Phase 3: gathering detection over the stitched crowd set
        # (detect() already dedupes branching crowds' repeats).
        started = time.perf_counter()
        gatherings = miner.detect(closed_crowds)
        report.detect_seconds = time.perf_counter() - started

        result = MiningResult(
            cluster_db=merged,
            closed_crowds=closed_crowds,
            gatherings=gatherings,
            params=self.params,
        )
        if store is not None:
            report.store_written = store.write_result(result)
        self.last_report = report
        return result
