"""Incremental discovery for new trajectory arrivals (Section III-C).

Two pieces:

* **Crowd extension** — by Lemma 4, only cluster sequences that end at the
  most recent timestamp of the old database can grow when a new batch
  arrives, so Algorithm 1 is simply resumed with the saved candidate set
  instead of re-sweeping the whole (now longer) time domain.
* **Gathering update** — when an old crowd has been extended into a longer
  closed crowd, Theorem 2 lets us keep every previously found closed
  gathering that lies entirely left of the rightmost invalid cluster at or
  before the junction point; only the suffix right of that cluster has to be
  re-examined with TAD*.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..clustering.snapshot import ClusterDatabase
from ..engine.registry import ExecutionConfig
from .bitvector import build_signatures
from .config import GatheringParameters
from .crowd import Crowd
from .crowd_discovery import CrowdDiscoveryResult, discover_closed_crowds
from .gathering import Gathering, detect_gatherings_tad_star

__all__ = [
    "IncrementalCrowdMiner",
    "update_gatherings",
]


@dataclass
class IncrementalCrowdMiner:
    """Maintains closed crowds across successive data batches.

    The first call to :meth:`update` behaves exactly like a fresh run of
    Algorithm 1; later calls resume the sweep from the saved candidate set,
    touching only the newly arrived timestamps.
    """

    params: GatheringParameters
    strategy: str = "GRID"
    config: Optional[ExecutionConfig] = None
    closed_crowds: List[Crowd] = field(default_factory=list)
    open_candidates: List[Crowd] = field(default_factory=list)
    last_timestamp: Optional[float] = None
    #: Accumulated proximity-graph build time (seconds) over all batches;
    #: non-zero only when the columnar frontier fast path serves the sweeps.
    proximity_seconds: float = 0.0

    def update(self, new_clusters: ClusterDatabase) -> CrowdDiscoveryResult:
        """Fold a new batch of snapshot clusters into the mined state.

        Parameters
        ----------
        new_clusters:
            Cluster database covering the new batch; timestamps at or before
            the last processed one are ignored (already mined).

        Returns
        -------
        The :class:`CrowdDiscoveryResult` of this batch.  ``closed_crowds``
        contains only the crowds closed by this batch; the miner's
        :attr:`closed_crowds` attribute accumulates the global answer.
        """
        # Closed crowds that end at the current horizon may stop being closed
        # once they are extended.  They are all present in the open candidate
        # set (Lemma 4) and will be re-derived by the resumed sweep, so drop
        # them from the accumulated answer first.
        if self.last_timestamp is not None:
            self.closed_crowds = [
                crowd
                for crowd in self.closed_crowds
                if crowd.end_time != self.last_timestamp
            ]

        result = discover_closed_crowds(
            new_clusters,
            self.params,
            strategy=self.strategy,
            initial_candidates=self.open_candidates,
            start_after=self.last_timestamp,
            config=self.config,
        )
        self.closed_crowds.extend(result.closed_crowds)
        self.open_candidates = result.open_candidates
        self.proximity_seconds += result.proximity_seconds
        if result.last_timestamp is not None:
            self.last_timestamp = result.last_timestamp
        return result

    def all_closed_crowds(self) -> List[Crowd]:
        """The full, de-duplicated set of closed crowds found so far."""
        seen = set()
        unique = []
        for crowd in self.closed_crowds:
            key = crowd.keys()
            if key not in seen:
                seen.add(key)
                unique.append(crowd)
        return unique


def _rightmost_old_invalid(
    bad_positions: Sequence[int], old_length: int
) -> Optional[int]:
    """The rightmost invalid position ``j`` with ``j <= old_length`` (0-based: j < old_length + 1)."""
    eligible = [j for j in bad_positions if j <= old_length]
    return max(eligible) if eligible else None


def update_gatherings(
    old_crowd: Crowd,
    new_crowd: Crowd,
    old_gatherings: Sequence[Gathering],
    params: GatheringParameters,
) -> List[Gathering]:
    """Closed gatherings of ``new_crowd``, reusing those of ``old_crowd``.

    ``new_crowd`` must extend ``old_crowd`` (same prefix of clusters).  The
    function mirrors the optimisation of Section III-C-2: after building the
    signatures of the extended crowd and finding its invalid clusters, every
    old closed gathering that lies strictly left of the rightmost invalid
    cluster at or before the junction is kept verbatim (Theorem 2), and TAD*
    is run only on the remaining suffix.
    """
    old_length = old_crowd.lifetime
    new_length = new_crowd.lifetime
    if (
        new_length < old_length
        or new_crowd.identities()[:old_length] != old_crowd.identities()
    ):
        raise ValueError("new_crowd must be an extension of old_crowd")
    if new_length == old_length:
        return list(old_gatherings)

    # The Test step runs on the bit-vector signatures of the extended crowd
    # (built once here and reused by the TAD* call below), as in the paper.
    signatures = build_signatures(new_crowd)
    full_mask = (1 << new_length) - 1
    par = {
        oid
        for oid, signature in signatures.items()
        if (signature.value & full_mask).bit_count() >= params.kp
    }
    bad = [
        index
        for index, cluster in enumerate(new_crowd)
        if sum(1 for oid in cluster.object_ids() if oid in par) < params.mp
    ]
    if not bad:
        # Every cluster has enough participators: the whole extended crowd is
        # a gathering, and by Theorem 1 it is the single closed one.
        return [Gathering(crowd=new_crowd, participator_ids=frozenset(par))]

    # Positions are 0-based; "at or before t_{n+1}" in the paper's 1-based
    # notation corresponds to index <= old_length (the first new cluster).
    junction = _rightmost_old_invalid(bad, old_length)
    if junction is None:
        # No invalid cluster in the old part or at the junction: Theorem 2
        # does not apply, fall back to a full TAD* run on the extended crowd.
        return detect_gatherings_tad_star(new_crowd, params, signatures=signatures)

    # Old gatherings entirely left of the junction stay closed.
    preserved: List[Gathering] = []
    old_keys = old_crowd.keys()
    prefix_keys = set(old_keys[:junction])
    for gathering in old_gatherings:
        if set(gathering.keys()) <= prefix_keys:
            preserved.append(gathering)

    # Only the suffix right of the junction needs re-examination.
    updated: List[Gathering] = list(preserved)
    if new_length - (junction + 1) >= params.kc:
        suffix = new_crowd.subsequence(junction + 1, new_length)
        updated.extend(detect_gatherings_tad_star(suffix, params))
    return updated
