"""Parameter sets for gathering-pattern mining.

The paper's problem statement (Section II) takes five mining parameters —
``m_c``, ``delta``, ``k_c`` for crowds and ``k_p``, ``m_p`` for gatherings —
on top of the DBSCAN parameters ``eps`` and ``m`` used for snapshot
clustering.  :class:`GatheringParameters` groups them with validation so the
rest of the library can pass a single object around.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict

__all__ = ["GatheringParameters", "PAPER_DEFAULTS"]


@dataclass(frozen=True)
class GatheringParameters:
    """All thresholds used by the mining pipeline.

    Attributes
    ----------
    eps:
        DBSCAN neighbourhood radius for snapshot clustering (metres).
    min_points:
        DBSCAN core-point threshold ``m``.
    mc:
        Crowd support threshold — minimum objects per snapshot cluster.
    delta:
        Variation threshold — maximum Hausdorff distance between consecutive
        clusters of a crowd (metres).
    kc:
        Crowd lifetime threshold — minimum number of consecutive timestamps.
    kp:
        Participator lifetime threshold — minimum (possibly non-consecutive)
        appearances of an object within a crowd.
    mp:
        Gathering support threshold — minimum participators per cluster.
    time_step:
        Granularity of the discretised time domain (minutes in the paper).
    """

    eps: float = 200.0
    min_points: int = 5
    mc: int = 15
    delta: float = 300.0
    kc: int = 20
    kp: int = 15
    mp: int = 10
    time_step: float = 1.0

    def __post_init__(self) -> None:
        if self.eps <= 0:
            raise ValueError("eps must be positive")
        if self.min_points < 1:
            raise ValueError("min_points must be at least 1")
        if self.mc < 1:
            raise ValueError("mc must be at least 1")
        if self.delta <= 0:
            raise ValueError("delta must be positive")
        if self.kc < 1:
            raise ValueError("kc must be at least 1")
        if self.kp < 1:
            raise ValueError("kp must be at least 1")
        if self.mp < 1:
            raise ValueError("mp must be at least 1")
        if self.time_step <= 0:
            raise ValueError("time_step must be positive")

    def with_overrides(self, **kwargs) -> "GatheringParameters":
        """Return a copy with some fields replaced."""
        return replace(self, **kwargs)

    def as_dict(self) -> Dict[str, float]:
        return {
            "eps": self.eps,
            "min_points": self.min_points,
            "mc": self.mc,
            "delta": self.delta,
            "kc": self.kc,
            "kp": self.kp,
            "mp": self.mp,
            "time_step": self.time_step,
        }


#: The parameter setting used in the paper's effectiveness study (Section IV-A).
PAPER_DEFAULTS = GatheringParameters(
    eps=200.0,
    min_points=5,
    mc=15,
    delta=300.0,
    kc=20,
    kp=15,
    mp=10,
    time_step=1.0,
)
