"""Bit vector signatures (BVS) and mask-based population count.

TAD* represents each object's membership across the clusters of a crowd as a
bit vector: bit ``i`` is set when the object appears in the ``i``-th cluster.
Counting a participator's occurrences is then a Hamming-weight computation,
which the paper implements with the classic binary-tree mask method
(Knuth, TAOCP 4A): sum adjacent 1-bit fields, then 2-bit fields, then 4-bit
fields, ... — ``log2(n)`` steps for an ``n``-bit vector.

Sub-crowds are represented by *masks* over the same signatures instead of
physically splitting them, so the signatures are built once per crowd and
reused across every TAD recursion.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, Iterable, List, Sequence, Tuple

__all__ = ["BitVector", "build_signatures", "subsequence_mask", "popcount_tree"]


@lru_cache(maxsize=None)
def _tree_masks(width: int) -> Tuple[Tuple[int, int], ...]:
    """The ``(shift, mask)`` pairs for the binary-tree popcount at ``width`` bits.

    Cached per width: TAD* calls :func:`popcount_tree` once per object and
    recursion level, always at the crowd's width, so recomputing the mask
    ladder on every call dominated the counting cost.
    """
    masks = []
    shift = 1
    while shift < width:
        # e.g. shift=1 -> 0b0101...., shift=2 -> 0b00110011...., etc.
        block = (1 << shift) - 1
        pattern = 0
        position = 0
        while position < width:
            pattern |= block << position
            position += 2 * shift
        masks.append((shift, pattern))
        shift *= 2
    return tuple(masks)


def popcount_tree(value: int, width: int) -> int:
    """Hamming weight of ``value`` (``width`` bits) via the mask method.

    This mirrors the paper's Section III-B-2 example; it is intentionally not
    just ``bin(value).count("1")`` so the reproduced algorithm matches the
    published one (tests cross-check both).
    """
    if value < 0:
        raise ValueError("bit vectors are unsigned")
    if width < 1:
        raise ValueError("width must be at least 1")
    x = value & ((1 << width) - 1)
    for shift, mask in _tree_masks(width):
        x = (x & mask) + ((x >> shift) & mask)
    return x


class BitVector:
    """A fixed-width bit vector with the operations TAD* needs."""

    __slots__ = ("width", "value")

    def __init__(self, width: int, value: int = 0) -> None:
        if width < 1:
            raise ValueError("width must be at least 1")
        if value < 0:
            raise ValueError("value must be non-negative")
        self.width = width
        self.value = value & ((1 << width) - 1)

    # -- construction -----------------------------------------------------------
    @classmethod
    def from_positions(cls, width: int, positions: Iterable[int]) -> "BitVector":
        """Create a vector with the given bit positions set (0 = first cluster)."""
        value = 0
        for pos in positions:
            if pos < 0 or pos >= width:
                raise ValueError(f"bit position {pos} out of range for width {width}")
            value |= 1 << pos
        return cls(width, value)

    @classmethod
    def from_bits(cls, bits: Sequence[int]) -> "BitVector":
        """Create a vector from an explicit bit sequence (index 0 = first cluster)."""
        width = len(bits)
        if width == 0:
            raise ValueError("bit sequence must be non-empty")
        value = 0
        for idx, bit in enumerate(bits):
            if bit not in (0, 1):
                raise ValueError("bits must be 0 or 1")
            if bit:
                value |= 1 << idx
        return cls(width, value)

    # -- bit access ---------------------------------------------------------------
    def get(self, position: int) -> bool:
        if position < 0 or position >= self.width:
            raise IndexError(f"bit position {position} out of range")
        return bool((self.value >> position) & 1)

    def set(self, position: int) -> "BitVector":
        if position < 0 or position >= self.width:
            raise IndexError(f"bit position {position} out of range")
        return BitVector(self.width, self.value | (1 << position))

    def bits(self) -> List[int]:
        return [(self.value >> i) & 1 for i in range(self.width)]

    def positions(self) -> List[int]:
        return [i for i in range(self.width) if (self.value >> i) & 1]

    # -- bitwise algebra -------------------------------------------------------------
    def __and__(self, other: "BitVector") -> "BitVector":
        if self.width != other.width:
            raise ValueError("bit vectors must share the same width")
        return BitVector(self.width, self.value & other.value)

    def __or__(self, other: "BitVector") -> "BitVector":
        if self.width != other.width:
            raise ValueError("bit vectors must share the same width")
        return BitVector(self.width, self.value | other.value)

    def masked(self, mask: "BitVector") -> "BitVector":
        """Restrict the signature to a sub-crowd mask (bitwise AND)."""
        return self & mask

    # -- counting ----------------------------------------------------------------------
    def hamming_weight(self) -> int:
        """Number of set bits.

        The paper implements this with the binary-tree mask method (exposed
        here as :func:`popcount_tree` and cross-checked in the tests); at
        runtime we use the interpreter's native popcount, which is the
        closest Python analogue of the hardware popcount a C# implementation
        would compile to.
        """
        return self.value.bit_count()

    def count_in_mask(self, mask: "BitVector") -> int:
        """Occurrences of the object within the sub-crowd selected by ``mask``."""
        return (self & mask).hamming_weight()

    # -- dunder niceties ---------------------------------------------------------------
    def __eq__(self, other) -> bool:
        return (
            isinstance(other, BitVector)
            and self.width == other.width
            and self.value == other.value
        )

    def __hash__(self) -> int:
        return hash((self.width, self.value))

    def __repr__(self) -> str:
        bit_string = "".join(str(b) for b in self.bits())
        return f"BitVector({bit_string!r})"


def build_signatures(crowd) -> Dict[int, BitVector]:
    """Build the BVS of every object of a crowd with a single scan.

    Parameters
    ----------
    crowd:
        A :class:`~repro.core.crowd.Crowd` (any sequence of snapshot clusters
        exposing ``object_ids()`` works).

    Returns
    -------
    Mapping from object id to its :class:`BitVector` over the crowd's clusters.
    """
    width = len(crowd)
    positions: Dict[int, List[int]] = {}
    for index, cluster in enumerate(crowd):
        for object_id in cluster.object_ids():
            positions.setdefault(object_id, []).append(index)
    return {
        object_id: BitVector.from_positions(width, pos_list)
        for object_id, pos_list in positions.items()
    }


def subsequence_mask(width: int, start: int, end: int) -> BitVector:
    """Mask selecting positions ``[start, end)`` of a ``width``-bit signature."""
    if start < 0 or end > width or start >= end:
        raise ValueError(f"invalid mask bounds [{start}, {end}) for width {width}")
    return BitVector.from_positions(width, range(start, end))
