"""Shared value codecs for mined pattern records.

One JSON encoding of :class:`~repro.clustering.snapshot.SnapshotCluster`,
:class:`~repro.core.crowd.Crowd` and :class:`~repro.core.gathering.Gathering`
is used everywhere a pattern crosses a process or storage boundary — the
streaming checkpoint (:mod:`repro.stream.checkpoint`), the persistent
pattern store (:mod:`repro.store`) and the query serving layer
(:mod:`repro.serve`).  Records are *value-complete*: the member
``object_id -> (x, y)`` maps are stored in insertion order, so decoding
rebuilds objects that compare equal to the originals and all floats
round-trip exactly (shortest-repr JSON float encoding).
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, List, Tuple

from ..clustering.snapshot import SnapshotCluster
from ..geometry.point import Point
from .crowd import Crowd
from .gathering import Gathering

__all__ = [
    "encode_cluster",
    "decode_cluster",
    "encode_crowd",
    "decode_crowd",
    "encode_gathering",
    "decode_gathering",
    "crowd_key_from_json",
    "crowd_fingerprint",
    "gathering_fingerprint",
]


def encode_cluster(cluster: SnapshotCluster) -> Dict[str, Any]:
    """JSON form of one snapshot cluster (members keep insertion order)."""
    return {
        "t": cluster.timestamp,
        "id": cluster.cluster_id,
        "members": [[oid, p.x, p.y] for oid, p in cluster.members.items()],
    }


def decode_cluster(data: Dict[str, Any]) -> SnapshotCluster:
    """Rebuild a snapshot cluster from its JSON form."""
    return SnapshotCluster(
        timestamp=float(data["t"]),
        members={int(oid): Point(float(x), float(y)) for oid, x, y in data["members"]},
        cluster_id=int(data["id"]),
    )


def encode_crowd(crowd: Crowd) -> List[Dict[str, Any]]:
    """JSON form of a crowd: its cluster sequence."""
    return [encode_cluster(cluster) for cluster in crowd.clusters]


def decode_crowd(data: List[Dict[str, Any]]) -> Crowd:
    """Rebuild a crowd from its JSON form."""
    return Crowd(tuple(decode_cluster(cluster) for cluster in data))


def encode_gathering(gathering: Gathering) -> Dict[str, Any]:
    """JSON form of a gathering: crowd plus sorted participator ids."""
    return {
        "crowd": encode_crowd(gathering.crowd),
        "participators": sorted(gathering.participator_ids),
    }


def decode_gathering(data: Dict[str, Any]) -> Gathering:
    """Rebuild a gathering from its JSON form."""
    return Gathering(
        crowd=decode_crowd(data["crowd"]),
        participator_ids=frozenset(int(oid) for oid in data["participators"]),
    )


def crowd_key_from_json(encoded_key: List[List[Any]]) -> Tuple[Tuple[float, int], ...]:
    """Hashable crowd key from its JSON ``[[t, cluster_id], ...]`` form."""
    return tuple((float(t), int(cid)) for t, cid in encoded_key)


def _digest(payload: Any) -> str:
    """Stable hex digest of a JSON-serialisable identity payload."""
    canonical = json.dumps(payload, separators=(",", ":"), sort_keys=True)
    return hashlib.sha1(canonical.encode("utf-8")).hexdigest()


def _crowd_content(crowd: Crowd) -> List[Any]:
    """Canonical identity payload of a crowd: full cluster content, sorted.

    Cluster ids alone are not globally unique — DBSCAN numbers each
    snapshot's clusters 0, 1, 2, ... — so two *different* datasets mined
    into one store would collide on ``(t, cluster_id)`` sequences.  The
    fingerprint therefore covers the value-complete member maps (object
    ids and positions, sorted by object id so insertion order is
    irrelevant).
    """
    return [
        [
            cluster.timestamp,
            cluster.cluster_id,
            [[oid, p.x, p.y] for oid, p in sorted(cluster.members.items())],
        ]
        for cluster in crowd.clusters
    ]


def crowd_fingerprint(crowd: Crowd) -> str:
    """Content fingerprint of a crowd (its value-complete cluster sequence).

    Two crowds over the same cluster content hash identically regardless of
    which shard or stream window produced them — this is what lets
    :class:`~repro.store.PatternStore` deduplicate shard outputs and
    streaming evictions landing in one database — while crowds from
    different inputs never collide.
    """
    return _digest(_crowd_content(crowd))


def gathering_fingerprint(gathering: Gathering) -> str:
    """Content fingerprint of a gathering (cluster content + participators)."""
    return _digest(
        {
            "crowd": _crowd_content(gathering.crowd),
            "par": sorted(gathering.participator_ids),
        }
    )
