"""Moving-cluster mining (Kalnis, Mamoulis & Bakiras, SSTD 2005).

A moving cluster is a sequence of density-based clusters at consecutive
timestamps where each consecutive pair shares a sufficiently large fraction
of objects: ``|c_t ∩ c_{t+1}| / |c_t ∪ c_{t+1}| >= theta``.  Membership may
change over time (unlike convoys), but consecutive snapshots must overlap —
the constraint the paper argues is still too strict for modelling group
events, and that the crowd replaces with a Hausdorff-distance bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Tuple

from .common import SnapshotGroups

__all__ = ["MovingCluster", "mine_moving_clusters"]


@dataclass(frozen=True)
class MovingCluster:
    """A maximal moving cluster: the chained cluster sequence."""

    clusters: Tuple[FrozenSet[int], ...]
    start_index: int

    @property
    def end_index(self) -> int:
        return self.start_index + len(self.clusters) - 1

    @property
    def duration(self) -> int:
        return len(self.clusters)

    def objects(self) -> FrozenSet[int]:
        merged = set()
        for cluster in self.clusters:
            merged |= cluster
        return frozenset(merged)


def _jaccard(a: FrozenSet[int], b: FrozenSet[int]) -> float:
    union = len(a | b)
    if union == 0:
        return 0.0
    return len(a & b) / union


def mine_moving_clusters(
    groups: SnapshotGroups,
    theta: float = 0.5,
    min_duration: int = 2,
    min_objects: int = 1,
) -> List[MovingCluster]:
    """Mine maximal moving clusters.

    Parameters
    ----------
    groups:
        Density-based clusters (object-id sets) per timestamp.
    theta:
        Minimum Jaccard overlap between consecutive clusters.
    min_duration:
        Minimum number of consecutive timestamps.
    min_objects:
        Minimum cluster size considered.
    """
    if not 0.0 < theta <= 1.0:
        raise ValueError("theta must be in (0, 1]")
    if min_duration < 1:
        raise ValueError("min_duration must be at least 1")

    results: List[MovingCluster] = []
    # Active chains: list of (cluster sequence, start index).
    active: List[Tuple[List[FrozenSet[int]], int]] = []

    for index in range(len(groups)):
        clusters = [c for c in groups.at(index) if len(c) >= min_objects]
        next_active: List[Tuple[List[FrozenSet[int]], int]] = []
        extended_clusters = set()

        for chain, start in active:
            last = chain[-1]
            grew = False
            for cluster in clusters:
                if _jaccard(last, cluster) >= theta:
                    next_active.append((chain + [cluster], start))
                    extended_clusters.add(cluster)
                    grew = True
            if not grew and len(chain) >= min_duration:
                results.append(MovingCluster(clusters=tuple(chain), start_index=start))

        for cluster in clusters:
            if cluster not in extended_clusters:
                next_active.append(([cluster], index))

        active = next_active

    for chain, start in active:
        if len(chain) >= min_duration:
            results.append(MovingCluster(clusters=tuple(chain), start_index=start))
    return results
