"""Convoy pattern mining (Jeung et al., VLDB 2008).

A convoy is a group of at least ``min_objects`` objects that are
density-connected to each other during at least ``min_duration`` consecutive
timestamps.  Unlike the gathering, a convoy keeps the *same* object set for
its whole lifetime.  The miner below is the CMC (coherent moving cluster)
procedure that the CuTS framework applies after trajectory simplification:
candidate object sets are intersected with the density-based clusters of the
next timestamp and kept while at least ``min_objects`` objects survive.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List

from .common import SnapshotGroups

__all__ = ["Convoy", "mine_convoys"]


@dataclass(frozen=True)
class Convoy:
    """A maximal convoy: object set plus its (closed) index interval."""

    members: FrozenSet[int]
    start_index: int
    end_index: int

    @property
    def duration(self) -> int:
        return self.end_index - self.start_index + 1


def mine_convoys(
    groups: SnapshotGroups, min_objects: int, min_duration: int
) -> List[Convoy]:
    """Mine maximal convoys from per-timestamp density-connected groups.

    Parameters
    ----------
    groups:
        Density-based clusters (object-id sets) at each timestamp, e.g. from
        :func:`repro.baselines.common.groups_from_clusters`.
    min_objects:
        Minimum convoy size (``m``).
    min_duration:
        Minimum number of consecutive timestamps (``k``).
    """
    if min_objects < 1 or min_duration < 1:
        raise ValueError("min_objects and min_duration must be at least 1")

    results: List[Convoy] = []
    # Active candidates: member set -> start index.
    active: Dict[FrozenSet[int], int] = {}

    for index in range(len(groups)):
        clusters = [c for c in groups.at(index) if len(c) >= min_objects]
        next_active: Dict[FrozenSet[int], int] = {}

        for members, start in active.items():
            survived = False
            for cluster in clusters:
                joint = members & cluster
                if len(joint) >= min_objects:
                    survived = True
                    prev = next_active.get(joint)
                    if prev is None or start < prev:
                        next_active[joint] = start
            if not survived and index - start >= min_duration:
                results.append(
                    Convoy(members=members, start_index=start, end_index=index - 1)
                )

        for cluster in clusters:
            next_active.setdefault(cluster, index)

        active = next_active

    last = len(groups) - 1
    for members, start in active.items():
        if last - start + 1 >= min_duration:
            results.append(Convoy(members=members, start_index=start, end_index=last))

    return _keep_maximal(results)


def _keep_maximal(convoys: List[Convoy]) -> List[Convoy]:
    """Remove convoys dominated by a longer/super-set convoy on the same interval."""
    kept: List[Convoy] = []
    ordered = sorted(
        convoys, key=lambda c: (c.duration, len(c.members)), reverse=True
    )
    for convoy in ordered:
        dominated = any(
            convoy.members <= other.members
            and other.start_index <= convoy.start_index
            and convoy.end_index <= other.end_index
            and (convoy.members, convoy.start_index, convoy.end_index)
            != (other.members, other.start_index, other.end_index)
            for other in kept
        )
        if not dominated:
            kept.append(convoy)
    return kept
