"""Shared helpers for the baseline group-pattern miners.

All baselines (flock, convoy, swarm, moving cluster) reason about which
objects are grouped together at each timestamp.  The helpers here produce
that view either from a pre-built snapshot-cluster database or directly from
a trajectory database.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..clustering.snapshot import ClusterDatabase
from ..geometry.point import Point
from ..trajectory.trajectory import TrajectoryDatabase

__all__ = ["SnapshotGroups", "groups_from_clusters", "positions_by_time"]


@dataclass
class SnapshotGroups:
    """Per-timestamp groupings of objects.

    Attributes
    ----------
    timestamps:
        Sorted time instants.
    groups:
        For each timestamp (same order), the list of object-id sets that are
        grouped (density-connected) at that instant.
    """

    timestamps: List[float]
    groups: List[List[FrozenSet[int]]]

    def __post_init__(self) -> None:
        if len(self.timestamps) != len(self.groups):
            raise ValueError("timestamps and groups must have the same length")

    def __len__(self) -> int:
        return len(self.timestamps)

    def at(self, index: int) -> List[FrozenSet[int]]:
        return self.groups[index]


def groups_from_clusters(cluster_db: ClusterDatabase) -> SnapshotGroups:
    """Extract object-id groupings from a snapshot-cluster database."""
    timestamps = cluster_db.timestamps()
    groups = [
        [cluster.object_ids() for cluster in cluster_db.clusters_at(t)]
        for t in timestamps
    ]
    return SnapshotGroups(timestamps=timestamps, groups=groups)


def positions_by_time(
    database: TrajectoryDatabase,
    timestamps: Optional[Sequence[float]] = None,
    time_step: float = 1.0,
) -> Tuple[List[float], List[Dict[int, Point]]]:
    """Object positions at each timestamp (interpolated where needed)."""
    if timestamps is None:
        timestamps = database.timestamps(step=time_step)
    snapshots = [database.snapshot(t) for t in timestamps]
    return list(timestamps), snapshots
