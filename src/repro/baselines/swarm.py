"""Swarm pattern mining (Li et al., VLDB 2010).

A swarm is a pair ``(O, T)`` where ``O`` is a set of at least ``min_objects``
objects and ``T`` a set of at least ``min_duration`` (possibly
non-consecutive) timestamps such that all objects of ``O`` belong to the same
density-based cluster at every timestamp of ``T``.  A *closed* swarm cannot
be extended with another object or another timestamp without violating the
definition.

Because snapshot clusters at one timestamp are disjoint, closed-swarm
discovery is exactly closed frequent-itemset mining where every snapshot
cluster is a transaction (items = object ids) and the support threshold is
``min_duration``.  The original ObjectGrowth algorithm explores the object-set
lattice depth-first with apriori/backward pruning and forward closure
checking; the implementation below reaches the same set of closed swarms with
an LCM-style closure-jumping enumeration (prefix-preserving closure
extensions), which has polynomial delay per closed swarm and is far better
behaved on the large committed groups our synthetic scenarios contain.  The
output — all closed swarms — is identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Set, Tuple

from .common import SnapshotGroups

__all__ = ["Swarm", "mine_swarms"]


@dataclass(frozen=True)
class Swarm:
    """A closed swarm: its object set and the timestamps they share a cluster."""

    members: FrozenSet[int]
    timestamps: FrozenSet[int]

    @property
    def support(self) -> int:
        return len(self.timestamps)


def _transactions(groups: SnapshotGroups) -> List[Tuple[int, FrozenSet[int]]]:
    """One transaction per snapshot cluster: ``(timestamp index, object ids)``."""
    transactions = []
    for t_index in range(len(groups)):
        for cluster in groups.at(t_index):
            if cluster:
                transactions.append((t_index, cluster))
    return transactions


def mine_swarms(
    groups: SnapshotGroups, min_objects: int, min_duration: int
) -> List[Swarm]:
    """Mine all closed swarms.

    Parameters
    ----------
    groups:
        Density-based clusters (object-id sets) per timestamp.
    min_objects:
        Minimum swarm size (``min_o``).
    min_duration:
        Minimum number of timestamps, not necessarily consecutive (``min_t``).
    """
    if min_objects < 1 or min_duration < 1:
        raise ValueError("min_objects and min_duration must be at least 1")

    transactions = _transactions(groups)
    if len(transactions) < min_duration:
        return []

    # occurrence list per object: transaction indices containing it.
    occurrences: Dict[int, Set[int]] = {}
    for tid, items in enumerate(transactions):
        for oid in items[1]:
            occurrences.setdefault(oid, set()).add(tid)
    # Objects appearing in fewer than min_duration transactions can never be
    # part of a swarm.
    frequent = {oid for oid, occ in occurrences.items() if len(occ) >= min_duration}
    ordered = sorted(frequent)

    def closure(occ: Set[int]) -> Set[int]:
        """All objects present in every transaction of ``occ``."""
        iterator = iter(occ)
        first = next(iterator)
        common = set(transactions[first][1]) & frequent
        for tid in iterator:
            common &= transactions[tid][1]
            if not common:
                break
        return common

    results: List[Swarm] = []

    def emit(members: Set[int], occ: Set[int]) -> None:
        if len(members) < min_objects:
            return
        timestamps = frozenset(transactions[tid][0] for tid in occ)
        if len(timestamps) < min_duration:
            return
        results.append(Swarm(members=frozenset(members), timestamps=timestamps))

    def expand(members: Set[int], occ: Set[int], core: int) -> None:
        emit(members, occ)
        for oid in ordered:
            if oid <= core or oid in members:
                continue
            new_occ = occ & occurrences[oid]
            if len(new_occ) < min_duration:
                continue
            new_members = closure(new_occ)
            # Prefix-preserving check: the closure must not add any object
            # smaller than the extension item that was not already present —
            # otherwise this closed set is generated from another branch.
            added = new_members - members
            if any(extra < oid for extra in added if extra != oid):
                continue
            expand(new_members, new_occ, oid)

    all_occ = set(range(len(transactions)))
    root_members = closure(all_occ) if transactions else set()
    expand(root_members, all_occ, core=-1)
    return results
