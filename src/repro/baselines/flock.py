"""Flock pattern mining (Benkert et al., Gudmundsson & van Kreveld).

A flock is a group of at least ``min_objects`` objects that stay together
inside a disc of a fixed radius for at least ``min_duration`` *consecutive*
timestamps.  The disc constraint is what distinguishes it from the convoy
(density-connected, arbitrary shape) and is responsible for the lossy-flock
problem the paper mentions.

The implementation follows the standard plane-sweep idea: at each timestamp
candidate discs are anchored on pairs of points at distance at most the disc
diameter (plus each single point for isolated groups); the member set of each
disc is computed, and member sets are chained across consecutive timestamps
by intersection.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Sequence, Set, Tuple

from ..geometry.point import Point

__all__ = ["Flock", "mine_flocks"]


@dataclass(frozen=True)
class Flock:
    """A maximal flock: its members and the closed time interval it spans."""

    members: FrozenSet[int]
    start_index: int
    end_index: int

    @property
    def duration(self) -> int:
        return self.end_index - self.start_index + 1


def _disc_members(
    positions: Dict[int, Point], center_x: float, center_y: float, radius: float
) -> FrozenSet[int]:
    radius_sq = radius * radius
    members = []
    for object_id, point in positions.items():
        dx = point.x - center_x
        dy = point.y - center_y
        if dx * dx + dy * dy <= radius_sq + 1e-9:
            members.append(object_id)
    return frozenset(members)


def _candidate_discs(
    positions: Dict[int, Point], radius: float
) -> List[Tuple[float, float]]:
    """Candidate disc centres: each point, plus the two discs through each close pair."""
    ids = sorted(positions)
    centres: List[Tuple[float, float]] = [(positions[i].x, positions[i].y) for i in ids]
    diameter_sq = (2.0 * radius) ** 2
    for i in range(len(ids)):
        pi = positions[ids[i]]
        for j in range(i + 1, len(ids)):
            pj = positions[ids[j]]
            dx = pj.x - pi.x
            dy = pj.y - pi.y
            dist_sq = dx * dx + dy * dy
            if dist_sq > diameter_sq or dist_sq == 0.0:
                continue
            dist = math.sqrt(dist_sq)
            half_x = (pi.x + pj.x) / 2.0
            half_y = (pi.y + pj.y) / 2.0
            # Height of the disc centre above the chord midpoint.
            height = math.sqrt(max(radius * radius - dist_sq / 4.0, 0.0))
            ux = -dy / dist
            uy = dx / dist
            centres.append((half_x + height * ux, half_y + height * uy))
            centres.append((half_x - height * ux, half_y - height * uy))
    return centres


def _snapshot_groups(
    positions: Dict[int, Point], radius: float, min_objects: int
) -> List[FrozenSet[int]]:
    """Maximal disc member sets with at least ``min_objects`` members."""
    groups: Set[FrozenSet[int]] = set()
    for cx, cy in _candidate_discs(positions, radius):
        members = _disc_members(positions, cx, cy, radius)
        if len(members) >= min_objects:
            groups.add(members)
    # Keep only maximal sets.
    maximal = []
    for group in sorted(groups, key=len, reverse=True):
        if not any(group < other for other in maximal):
            maximal.append(group)
    return maximal


def mine_flocks(
    snapshots: Sequence[Dict[int, Point]],
    radius: float,
    min_objects: int,
    min_duration: int,
) -> List[Flock]:
    """Mine maximal flocks from a sequence of per-timestamp position maps.

    Parameters
    ----------
    snapshots:
        For each (consecutive) timestamp, a mapping object id -> position.
    radius:
        Radius of the flock disc.
    min_objects:
        Minimum number of objects travelling together.
    min_duration:
        Minimum number of consecutive timestamps.
    """
    if radius <= 0:
        raise ValueError("radius must be positive")
    if min_objects < 1 or min_duration < 1:
        raise ValueError("min_objects and min_duration must be at least 1")

    # candidate: (member set, start index) — extended greedily.
    active: Dict[FrozenSet[int], int] = {}
    results: List[Flock] = []

    for index, positions in enumerate(snapshots):
        groups = _snapshot_groups(positions, radius, min_objects)
        next_active: Dict[FrozenSet[int], int] = {}

        # Try to extend every active candidate with every current group.
        for members, start in active.items():
            extended = False
            for group in groups:
                joint = members & group
                if len(joint) >= min_objects:
                    prev_start = next_active.get(joint, index)
                    next_active[joint] = min(prev_start, start)
                    extended = True
            if not extended and (index - 1) - start + 1 >= min_duration:
                results.append(Flock(members=members, start_index=start, end_index=index - 1))

        # New groups start their own candidates.
        for group in groups:
            next_active.setdefault(group, index)

        active = next_active

    last_index = len(snapshots) - 1
    for members, start in active.items():
        if last_index - start + 1 >= min_duration:
            results.append(Flock(members=members, start_index=start, end_index=last_index))

    return _deduplicate(results)


def _deduplicate(flocks: List[Flock]) -> List[Flock]:
    """Drop flocks dominated by another (superset members and covering interval)."""
    kept: List[Flock] = []
    for flock in sorted(flocks, key=lambda f: (f.duration, len(f.members)), reverse=True):
        dominated = any(
            flock.members <= other.members
            and other.start_index <= flock.start_index
            and flock.end_index <= other.end_index
            and (flock.members, flock.start_index, flock.end_index)
            != (other.members, other.start_index, other.end_index)
            for other in kept
        )
        if not dominated:
            kept.append(flock)
    return kept
