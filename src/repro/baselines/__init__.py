"""Baseline group-pattern miners the paper compares against."""

from .common import SnapshotGroups, groups_from_clusters, positions_by_time
from .flock import Flock, mine_flocks
from .convoy import Convoy, mine_convoys
from .swarm import Swarm, mine_swarms
from .moving_cluster import MovingCluster, mine_moving_clusters

__all__ = [
    "SnapshotGroups",
    "groups_from_clusters",
    "positions_by_time",
    "Flock",
    "mine_flocks",
    "Convoy",
    "mine_convoys",
    "Swarm",
    "mine_swarms",
    "MovingCluster",
    "mine_moving_clusters",
]
