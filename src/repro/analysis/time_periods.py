"""Time-of-day classification used by the effectiveness study.

The paper divides a day into three periods: peak time (6am–10am and 5pm–8pm),
work time (10am–5pm) and casual time (8pm–5am).  These helpers classify
minute-of-day timestamps into those periods and assign mined patterns to the
periods their lifetimes overlap (patterns crossing a boundary are counted in
every period they touch, as the paper does).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set, Tuple

__all__ = ["PERIODS", "classify_minute", "periods_of_interval", "assign_to_periods"]

#: Period name -> list of [start_minute, end_minute) intervals within a day.
PERIODS: Dict[str, List[Tuple[int, int]]] = {
    "peak": [(6 * 60, 10 * 60), (17 * 60, 20 * 60)],
    "work": [(10 * 60, 17 * 60)],
    "casual": [(20 * 60, 24 * 60), (0, 5 * 60)],
}

MINUTES_PER_DAY = 24 * 60


def classify_minute(minute_of_day: float) -> str:
    """The period containing a minute-of-day value (wraps around midnight).

    Minutes that fall in none of the named intervals (5am–6am) are treated as
    casual time, matching the paper's three-way split of the whole day.
    """
    minute = minute_of_day % MINUTES_PER_DAY
    for period, intervals in PERIODS.items():
        for start, end in intervals:
            if start <= minute < end:
                return period
    return "casual"


def periods_of_interval(start_minute: float, end_minute: float) -> Set[str]:
    """All periods a closed minute interval overlaps."""
    if end_minute < start_minute:
        raise ValueError("end_minute must not precede start_minute")
    touched = set()
    minute = int(start_minute)
    while minute <= int(end_minute):
        touched.add(classify_minute(minute))
        minute += 1
    return touched


def assign_to_periods(
    patterns: Iterable, start_of=lambda p: p.start_time, end_of=lambda p: p.end_time
) -> Dict[str, int]:
    """Count patterns per period, duplicating those that cross boundaries."""
    counts = {period: 0 for period in PERIODS}
    for pattern in patterns:
        for period in periods_of_interval(start_of(pattern), end_of(pattern)):
            counts[period] += 1
    return counts
