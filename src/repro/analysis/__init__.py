"""Analysis helpers: time-of-day classification, effectiveness study, statistics."""

from .time_periods import PERIODS, assign_to_periods, classify_minute, periods_of_interval
from .effectiveness import PatternCounts, count_patterns, count_patterns_for_scenario
from .statistics import PatternStatistics, crowd_statistics, gathering_statistics

__all__ = [
    "PERIODS",
    "assign_to_periods",
    "classify_minute",
    "periods_of_interval",
    "PatternCounts",
    "count_patterns",
    "count_patterns_for_scenario",
    "PatternStatistics",
    "crowd_statistics",
    "gathering_statistics",
]
