"""Driver for the effectiveness study (Figure 5).

For a simulated data slice it mines all four pattern families the paper
compares — closed crowds, closed gatherings, closed swarms and convoys — and
returns their counts, so the Figure 5 benchmarks (and the examples) only need
to iterate over regimes and print rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..baselines.convoy import mine_convoys
from ..baselines.common import groups_from_clusters
from ..baselines.swarm import mine_swarms
from ..clustering.snapshot import ClusterDatabase
from ..core.config import GatheringParameters
from ..core.pipeline import GatheringMiner
from ..datagen.simulator import SimulationResult

__all__ = ["PatternCounts", "count_patterns", "count_patterns_for_scenario"]


@dataclass(frozen=True)
class PatternCounts:
    """Counts of the four pattern families on one data slice."""

    closed_crowds: int
    closed_gatherings: int
    closed_swarms: int
    convoys: int

    def as_dict(self) -> Dict[str, int]:
        return {
            "closed_crowds": self.closed_crowds,
            "closed_gatherings": self.closed_gatherings,
            "closed_swarms": self.closed_swarms,
            "convoys": self.convoys,
        }


def count_patterns(
    cluster_db: ClusterDatabase,
    params: GatheringParameters,
    baseline_min_objects: int = 15,
    baseline_min_duration: int = 10,
) -> PatternCounts:
    """Mine all four pattern families from a snapshot-cluster database.

    ``baseline_min_objects`` / ``baseline_min_duration`` are the ``min_o`` /
    ``min_t`` thresholds the paper uses for swarms and convoys.
    """
    miner = GatheringMiner(params)
    result = miner.mine_clusters(cluster_db)

    groups = groups_from_clusters(cluster_db)
    swarms = mine_swarms(groups, baseline_min_objects, baseline_min_duration)
    convoys = mine_convoys(groups, baseline_min_objects, baseline_min_duration)

    return PatternCounts(
        closed_crowds=len(result.closed_crowds),
        closed_gatherings=len(result.gatherings),
        closed_swarms=len(swarms),
        convoys=len(convoys),
    )


def count_patterns_for_scenario(
    scenario: SimulationResult,
    params: GatheringParameters,
    baseline_min_objects: int = 15,
    baseline_min_duration: int = 10,
) -> PatternCounts:
    """Snapshot-cluster a simulated scenario and mine all four pattern families."""
    miner = GatheringMiner(params)
    cluster_db = miner.cluster(scenario.database)
    return count_patterns(
        cluster_db,
        params,
        baseline_min_objects=baseline_min_objects,
        baseline_min_duration=baseline_min_duration,
    )
