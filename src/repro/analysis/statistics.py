"""Descriptive statistics over mined patterns.

Small, dependency-free helpers used by examples, tests and EXPERIMENTS.md to
summarise what the miner found: lifetime distributions, participator counts,
spatial extents.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from ..core.crowd import Crowd
from ..core.gathering import Gathering
from ..geometry.mbr import mbr_of_points

__all__ = ["PatternStatistics", "crowd_statistics", "gathering_statistics"]


@dataclass(frozen=True)
class PatternStatistics:
    """Aggregate statistics of a collection of crowds or gatherings."""

    count: int
    mean_lifetime: float
    max_lifetime: int
    mean_size: float
    mean_extent: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean_lifetime": self.mean_lifetime,
            "max_lifetime": self.max_lifetime,
            "mean_size": self.mean_size,
            "mean_extent": self.mean_extent,
        }


def _extent(crowd: Crowd) -> float:
    """Diagonal of the bounding box of all member positions of the crowd."""
    points = [p for cluster in crowd for p in cluster.points()]
    box = mbr_of_points(points)
    return float(np.hypot(box.width, box.height))


def crowd_statistics(crowds: Sequence[Crowd]) -> PatternStatistics:
    """Statistics over a set of crowds (empty input gives zeroed statistics)."""
    if not crowds:
        return PatternStatistics(0, 0.0, 0, 0.0, 0.0)
    lifetimes = [crowd.lifetime for crowd in crowds]
    sizes = [np.mean([len(cluster) for cluster in crowd]) for crowd in crowds]
    extents = [_extent(crowd) for crowd in crowds]
    return PatternStatistics(
        count=len(crowds),
        mean_lifetime=float(np.mean(lifetimes)),
        max_lifetime=int(max(lifetimes)),
        mean_size=float(np.mean(sizes)),
        mean_extent=float(np.mean(extents)),
    )


def gathering_statistics(gatherings: Sequence[Gathering]) -> PatternStatistics:
    """Statistics over a set of gatherings."""
    return crowd_statistics([g.crowd for g in gatherings])
