"""Phase-1 batched-clustering shoot-out on the multi-district city scenario.

Snapshot-clusters the city workload with both execution backends: the
scalar per-snapshot loop (interpolate a position dict, DBSCAN, wrap member
dicts) and the batched whole-database path (one columnar arena per
timestamp block, a single offset-bucketed pair kernel + union-find over
every snapshot at once, frames built as zero-copy arena slices).  Asserts
exact cluster parity and the phase-1 speedup.

The hard assertion bound (3x) is deliberately below the typical measured
speedup (>= 8x scalar-vs-batched on an idle machine) so that a noisy
shared worker cannot flake the suite; the tracked ``BENCH_<n>.json``
trajectory records the real numbers per commit.
"""

from __future__ import annotations

import os
import time

from repro.bench import SCENARIOS
from repro.clustering.snapshot import build_cluster_database

ROUNDS = 3
MIN_SPEEDUP = 3.0

#: The canonical ``city`` workload of ``repro bench`` — this gate and the
#: tracked ``BENCH_<n>.json`` trajectory must measure the same scenario.
CITY = SCENARIOS["city"]
PARAMS = CITY.params


def _cluster(database, method: str):
    best = float("inf")
    cluster_db = None
    for _ in range(ROUNDS):
        start = time.perf_counter()
        cluster_db = build_cluster_database(
            database, eps=PARAMS.eps, min_points=PARAMS.min_points, method=method
        )
        best = min(best, time.perf_counter() - start)
    return cluster_db, best


def test_batched_phase1_beats_scalar_reference(benchmark):
    database = CITY.build(quick=False)

    scalar_db, scalar_s = _cluster(database, "grid")
    batched_db, batched_s = _cluster(database, "numpy")

    # Exact parity: timestamps (incl. empty snapshots), cluster ids and the
    # full member maps (bit-identical interpolated coordinates).
    assert batched_db.timestamps() == scalar_db.timestamps()
    for timestamp in scalar_db.timestamps():
        scalar_clusters = scalar_db.clusters_at(timestamp)
        batched_clusters = batched_db.clusters_at(timestamp)
        assert len(batched_clusters) == len(scalar_clusters)
        for scalar_cluster, batched_cluster in zip(scalar_clusters, batched_clusters):
            assert batched_cluster.cluster_id == scalar_cluster.cluster_id
            assert batched_cluster.members == scalar_cluster.members

    speedup = scalar_s / batched_s
    benchmark.extra_info.update(
        {
            "fleet": CITY.fleet_size,
            "snapshots": scalar_db.snapshot_count(),
            "clusters": len(scalar_db),
            "scalar_phase1_s": round(scalar_s, 3),
            "batched_phase1_s": round(batched_s, 3),
            "speedup": round(speedup, 2),
        }
    )
    print(
        f"\nphase-1 batched path (city: fleet={CITY.fleet_size}, "
        f"duration={CITY.duration}): scalar {scalar_s:.2f}s vs "
        f"batched {batched_s:.2f}s -> {speedup:.1f}x"
    )

    # One representative batched run for the benchmark table.
    benchmark.pedantic(
        build_cluster_database,
        args=(database,),
        kwargs={
            "eps": PARAMS.eps,
            "min_points": PARAMS.min_points,
            "method": "numpy",
        },
        rounds=2,
        iterations=1,
    )

    # Wall-clock gate only on dedicated machines (parity always gates).
    if not os.environ.get("CI"):
        assert speedup >= MIN_SPEEDUP, (
            f"batched phase 1 only {speedup:.2f}x faster than the scalar "
            f"reference (expected >= {MIN_SPEEDUP}x, typically >= 8x)"
        )
