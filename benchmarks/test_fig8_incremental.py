"""Figure 8 — incremental algorithms vs re-computation from scratch.

* Figure 8a — after an initial "day" of data, four more days arrive one at a
  time.  Re-computation sweeps the whole (growing) time domain after every
  arrival, so its cost grows with the database; the crowd-extension algorithm
  resumes from the saved candidate set and stays roughly flat.
* Figure 8b — an old crowd is extended into a longer closed crowd; the
  gathering-update algorithm reuses the old crowd's gatherings (Theorem 2)
  and only re-examines the suffix, so it gets faster as the old/new length
  ratio ``r`` grows, while re-running TAD* from scratch is insensitive to
  ``r``.
"""

from __future__ import annotations

import pytest

from repro.core.crowd_discovery import discover_closed_crowds
from repro.core.gathering import detect_gatherings_tad_star
from repro.core.incremental import IncrementalCrowdMiner, update_gatherings
from repro.datagen.synthetic import synthetic_cluster_database, synthetic_crowd

from .conftest import BENCH_PARAMS

DAY_LENGTH = 60
DAYS = 5
CLUSTERS_PER_TIMESTAMP = 8
MEMBERS_PER_CLUSTER = 8

RATIOS = (0.1, 0.3, 0.5, 0.7, 0.9)
EXTENDED_CROWD_LENGTH = 60


def _daily_batches():
    """One cluster database per simulated day, with consecutive timestamps."""
    full = synthetic_cluster_database(
        timestamps=DAY_LENGTH * DAYS,
        clusters_per_timestamp=CLUSTERS_PER_TIMESTAMP,
        members_per_cluster=MEMBERS_PER_CLUSTER,
        chain_fraction=0.5,
        seed=71,
    )
    batches = []
    for day in range(DAYS):
        start = float(day * DAY_LENGTH)
        end = float((day + 1) * DAY_LENGTH - 1)
        batches.append(full.slice_time(start, end))
    return full, batches


_FULL_DB, _BATCHES = _daily_batches()
_PARAMS = BENCH_PARAMS.with_overrides(mc=4, delta=400.0, kc=10, kp=6, mp=3)


@pytest.mark.parametrize("days", [1, 2, 3, 4, 5])
def test_fig8a_recomputation(benchmark, days):
    """Re-run Algorithm 1 over the whole time domain after each update."""
    end = float(days * DAY_LENGTH - 1)
    database = _FULL_DB.slice_time(0.0, end)
    result = benchmark.pedantic(
        discover_closed_crowds, args=(database, _PARAMS), kwargs={"strategy": "GRID"},
        rounds=2, iterations=1,
    )
    benchmark.extra_info.update(
        {"figure": "8a", "method": "re-computation", "days": days, "crowds": result.crowd_count()}
    )


@pytest.mark.parametrize("days", [1, 2, 3, 4, 5])
def test_fig8a_crowd_extension(benchmark, days):
    """Process only the newest day, resuming from the saved candidates."""

    def run():
        miner = IncrementalCrowdMiner(params=_PARAMS, strategy="GRID")
        # Previous days are folded in outside the timed region in the paper's
        # setting; here the whole incremental history is cheap enough that we
        # time the final update only.
        for batch in _BATCHES[: days - 1]:
            miner.update(batch)
        return miner

    def timed(miner):
        miner.update(_BATCHES[days - 1])
        return miner

    miner = run()
    result_miner = benchmark.pedantic(timed, args=(miner,), rounds=1, iterations=1)
    benchmark.extra_info.update(
        {
            "figure": "8a",
            "method": "crowd-extension",
            "days": days,
            "crowds": len(result_miner.all_closed_crowds()),
        }
    )


def test_fig8a_incremental_matches_recomputation(benchmark):
    def run():
        miner = IncrementalCrowdMiner(params=_PARAMS, strategy="GRID")
        for batch in _BATCHES:
            miner.update(batch)
        incremental = sorted(c.keys() for c in miner.all_closed_crowds())
        reference = discover_closed_crowds(_FULL_DB, _PARAMS, strategy="GRID")
        recomputed = sorted(c.keys() for c in reference.closed_crowds)
        return incremental, recomputed

    incremental, recomputed = benchmark.pedantic(run, rounds=1, iterations=1)
    assert incremental == recomputed


def _extended_crowd_pair(ratio):
    """An old crowd occupying ``ratio`` of the extended crowd.

    The presence probability is kept low enough that the crowd contains
    invalid clusters, so the TAD* recursion has real work that the
    gathering-update algorithm can skip on the preserved prefix.
    """
    full = synthetic_crowd(
        length=EXTENDED_CROWD_LENGTH,
        committed=12,
        casual=12,
        presence_probability=0.72,
        casual_presence=0.3,
        seed=int(ratio * 100),
    )
    old_length = max(int(EXTENDED_CROWD_LENGTH * ratio), 1)
    return full.subsequence(0, old_length), full


_FIG8B_PARAMS = _PARAMS.with_overrides(kp=8, mp=7, kc=6)


@pytest.mark.parametrize("ratio", RATIOS)
def test_fig8b_recomputation(benchmark, ratio):
    _, new_crowd = _extended_crowd_pair(ratio)
    params = _FIG8B_PARAMS
    found = benchmark.pedantic(
        detect_gatherings_tad_star, args=(new_crowd, params), rounds=3, iterations=1
    )
    benchmark.extra_info.update(
        {"figure": "8b", "method": "re-computation", "ratio": ratio, "gatherings": len(found)}
    )


@pytest.mark.parametrize("ratio", RATIOS)
def test_fig8b_gathering_update(benchmark, ratio):
    old_crowd, new_crowd = _extended_crowd_pair(ratio)
    params = _FIG8B_PARAMS
    old_found = detect_gatherings_tad_star(old_crowd, params)
    found = benchmark.pedantic(
        update_gatherings, args=(old_crowd, new_crowd, old_found, params),
        rounds=3, iterations=1,
    )
    benchmark.extra_info.update(
        {"figure": "8b", "method": "gathering-update", "ratio": ratio, "gatherings": len(found)}
    )


@pytest.mark.parametrize("ratio", RATIOS)
def test_fig8b_update_matches_recomputation(benchmark, ratio):
    old_crowd, new_crowd = _extended_crowd_pair(ratio)
    params = _FIG8B_PARAMS

    def run():
        old_found = detect_gatherings_tad_star(old_crowd, params)
        updated = sorted(g.keys() for g in update_gatherings(old_crowd, new_crowd, old_found, params))
        recomputed = sorted(g.keys() for g in detect_gatherings_tad_star(new_crowd, params))
        return updated, recomputed

    updated, recomputed = benchmark.pedantic(run, rounds=1, iterations=1)
    assert updated == recomputed
