"""Out-of-core phase-1 overhead gate on the metro workload.

The spilled (mmap-arena) builder trades RAM for disk: every interpolated
row is written once and paged back on demand, so some wall-clock overhead
over the in-RAM batched path is expected — but it must stay small, or the
megacity story ("as large as the disk, same answers, bounded RSS") costs
too much to use.  This benchmark clusters the full ``metro`` scenario
(5k objects × 150 snapshots) both ways, asserts *exact* cluster parity,
and gates the spilled path at ``MAX_SLOWDOWN`` (1.5x) of the in-RAM wall
time — on an idle machine the measured overhead is far lower (the spill
is sequential appends; the block sizes are identical).  As everywhere in
this suite, the wall-clock gate is skipped on shared CI machines; parity
always gates.
"""

from __future__ import annotations

import os
import tempfile
import time

from repro.bench import SCENARIOS
from repro.engine.phase1 import build_cluster_database_batched

ROUNDS = 3
MAX_SLOWDOWN = 1.5

#: The canonical ``metro`` workload of ``repro bench`` — same scenario the
#: tracked ``BENCH_<n>.json`` trajectory measures.
METRO = SCENARIOS["metro"]
PARAMS = METRO.params


def _cluster(database, spill_dir=None):
    best = float("inf")
    cluster_db = None
    for _ in range(ROUNDS):
        start = time.perf_counter()
        cluster_db = build_cluster_database_batched(
            database,
            eps=PARAMS.eps,
            min_points=PARAMS.min_points,
            spill_dir=spill_dir,
        )
        best = min(best, time.perf_counter() - start)
    return cluster_db, best


def test_mmap_phase1_within_budget_of_in_ram(benchmark):
    database = METRO.build(quick=False)

    in_ram_db, in_ram_s = _cluster(database)
    with tempfile.TemporaryDirectory(prefix="bench-outofcore-") as spill_dir:
        spilled_db, spilled_s = _cluster(database, spill_dir=spill_dir)

        # Exact parity: timestamps, cluster ids and full member maps
        # (bit-identical coordinates round-tripped through the memmap).
        assert spilled_db.timestamps() == in_ram_db.timestamps()
        for timestamp in in_ram_db.timestamps():
            in_ram_clusters = in_ram_db.clusters_at(timestamp)
            spilled_clusters = spilled_db.clusters_at(timestamp)
            assert len(spilled_clusters) == len(in_ram_clusters)
            for ref, spill in zip(in_ram_clusters, spilled_clusters):
                assert spill.cluster_id == ref.cluster_id
                assert spill.members == ref.members

        slowdown = spilled_s / in_ram_s
        benchmark.extra_info.update(
            {
                "fleet": METRO.fleet_size,
                "snapshots": in_ram_db.snapshot_count(),
                "clusters": len(in_ram_db),
                "in_ram_phase1_s": round(in_ram_s, 3),
                "spilled_phase1_s": round(spilled_s, 3),
                "slowdown": round(slowdown, 2),
            }
        )
        print(
            f"\nout-of-core phase 1 (metro: fleet={METRO.fleet_size}, "
            f"duration={METRO.duration}): in-RAM {in_ram_s:.2f}s vs "
            f"spilled {spilled_s:.2f}s -> {slowdown:.2f}x"
        )

        # One representative spilled run for the benchmark table.
        benchmark.pedantic(
            build_cluster_database_batched,
            args=(database,),
            kwargs={
                "eps": PARAMS.eps,
                "min_points": PARAMS.min_points,
                "spill_dir": spill_dir,
            },
            rounds=2,
            iterations=1,
        )

    # Wall-clock gate only on dedicated machines (parity always gates).
    if not os.environ.get("CI"):
        assert slowdown <= MAX_SLOWDOWN, (
            f"spilled phase 1 is {slowdown:.2f}x the in-RAM wall time "
            f"(budget {MAX_SLOWDOWN}x) — the out-of-core path got expensive"
        )
