"""Figure 5 — effectiveness study.

Reproduces the two bar charts of the paper's effectiveness study: the average
number of closed crowds, closed gatherings, closed swarms and convoys per
simulated data slice, grouped by

* Figure 5a — time of day (peak / work / casual),
* Figure 5b — weather condition (clear / rainy / snowy).

The expected *shape* (not absolute counts):

* most gatherings in peak time, far fewer in work and casual time;
* casual time has many crowds but few of them are gatherings;
* gatherings increase from clear to rainy to snowy weather;
* snowy days show the largest crowd-vs-gathering gap;
* swarm counts are comparatively insensitive to the weather.

Each benchmark times the full mining pass for one regime and attaches the
pattern counts as ``extra_info`` so the series can be read from the
pytest-benchmark output (and is also printed explicitly).
"""

from __future__ import annotations

import pytest

from repro.analysis.effectiveness import count_patterns_for_scenario
from repro.datagen.scenarios import time_of_day_scenario, weather_scenario

from .conftest import BASELINE_MIN_DURATION, BASELINE_MIN_OBJECTS, BENCH_PARAMS

PERIODS = ("peak", "work", "casual")
WEATHER = ("clear", "rainy", "snowy")

_results = {}


def _record(figure, regime, counts):
    _results.setdefault(figure, {})[regime] = counts.as_dict()
    rows = _results[figure]
    header = f"[{figure}] " + " | ".join(
        f"{name}: crowds={c['closed_crowds']} gatherings={c['closed_gatherings']} "
        f"swarms={c['closed_swarms']} convoys={c['convoys']}"
        for name, c in rows.items()
    )
    print("\n" + header)


@pytest.mark.parametrize("period", PERIODS)
def test_fig5a_time_of_day(benchmark, period):
    scenario = time_of_day_scenario(period, seed=17)

    def run():
        return count_patterns_for_scenario(
            scenario,
            BENCH_PARAMS,
            baseline_min_objects=BASELINE_MIN_OBJECTS,
            baseline_min_duration=BASELINE_MIN_DURATION,
        )

    counts = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update({"period": period, **counts.as_dict()})
    _record("fig5a", period, counts)
    assert counts.closed_crowds >= counts.closed_gatherings


@pytest.mark.parametrize("weather", WEATHER)
def test_fig5b_weather(benchmark, weather):
    scenario = weather_scenario(weather, seed=29)

    def run():
        return count_patterns_for_scenario(
            scenario,
            BENCH_PARAMS,
            baseline_min_objects=BASELINE_MIN_OBJECTS,
            baseline_min_duration=BASELINE_MIN_DURATION,
        )

    counts = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update({"weather": weather, **counts.as_dict()})
    _record("fig5b", weather, counts)
    assert counts.closed_crowds >= counts.closed_gatherings


def test_fig5_shape_assertions(benchmark):
    """Cross-regime shape checks, mirroring the paper's qualitative claims."""

    def run():
        by_period = {
            period: count_patterns_for_scenario(
                time_of_day_scenario(period, seed=17),
                BENCH_PARAMS,
                baseline_min_objects=BASELINE_MIN_OBJECTS,
                baseline_min_duration=BASELINE_MIN_DURATION,
            )
            for period in PERIODS
        }
        by_weather = {
            weather: count_patterns_for_scenario(
                weather_scenario(weather, seed=29),
                BENCH_PARAMS,
                baseline_min_objects=BASELINE_MIN_OBJECTS,
                baseline_min_duration=BASELINE_MIN_DURATION,
            )
            for weather in WEATHER
        }
        return by_period, by_weather

    by_period, by_weather = benchmark.pedantic(run, rounds=1, iterations=1)

    # Figure 5a shape: peak time dominates gatherings; casual time has a
    # clear crowd-versus-gathering gap.
    assert by_period["peak"].closed_gatherings > by_period["work"].closed_gatherings
    assert by_period["peak"].closed_gatherings > by_period["casual"].closed_gatherings
    assert by_period["casual"].closed_crowds > by_period["casual"].closed_gatherings

    # Figure 5b shape: worse weather, more gatherings; snowy has the largest
    # crowd-vs-gathering gap.
    assert by_weather["clear"].closed_gatherings <= by_weather["rainy"].closed_gatherings
    assert by_weather["rainy"].closed_gatherings <= by_weather["snowy"].closed_gatherings
    snowy_gap = by_weather["snowy"].closed_crowds - by_weather["snowy"].closed_gatherings
    clear_gap = by_weather["clear"].closed_crowds - by_weather["clear"].closed_gatherings
    assert snowy_gap >= clear_gap
