"""Shared fixtures and workload builders for the benchmark harness.

The paper's evaluation runs on three months of Beijing taxi data (tens of
thousands of vehicles, 132k timestamps).  The benchmarks here exercise the
same code paths on laptop-scale synthetic workloads: absolute runtimes are
not comparable to the paper's, but the *relative* behaviour — which scheme
wins, how curves move with each parameter — is what each figure's benchmark
reproduces.  ``BENCH_PARAMS`` is the scaled-down analogue of the paper's
default setting (mc=15, delta=300 m, kc=20, kp=15, mp=10 on minute-level
snapshots).
"""

from __future__ import annotations

import pytest

from repro.core.config import GatheringParameters
from repro.core.pipeline import GatheringMiner
from repro.datagen.scenarios import efficiency_scenario

#: Scaled-down analogue of the paper's default parameter setting.
BENCH_PARAMS = GatheringParameters(
    eps=200.0,
    min_points=4,
    mc=6,
    delta=300.0,
    kc=15,
    kp=10,
    mp=5,
    time_step=1.0,
)

#: Baseline (swarm / convoy) thresholds: the paper uses min_o=15, min_t=10.
BASELINE_MIN_OBJECTS = 10
BASELINE_MIN_DURATION = 8


_CLUSTER_DB_CACHE = {}


def cluster_db_for_fleet(fleet_size: int, duration: int = 60, seed: int = 43):
    """Snapshot-cluster database for an efficiency-study workload (cached).

    Building the cluster database (simulation + per-timestamp DBSCAN) is the
    fixed preprocessing cost shared by all crowd-discovery benchmarks, so it
    is computed once per (fleet, duration) pair and reused.
    """
    key = (fleet_size, duration, seed)
    if key not in _CLUSTER_DB_CACHE:
        scenario = efficiency_scenario(
            fleet_size=fleet_size, duration=duration, gatherings=3, seed=seed
        )
        miner = GatheringMiner(BENCH_PARAMS)
        _CLUSTER_DB_CACHE[key] = miner.cluster(scenario.database)
    return _CLUSTER_DB_CACHE[key]


@pytest.fixture(scope="session")
def bench_params():
    return BENCH_PARAMS
