"""Ablation benchmarks for the design choices called out in DESIGN.md.

These are not figures from the paper; they quantify the implementation
choices this reproduction makes:

* exact Hausdorff (naive double loop vs numpy) vs the thresholded
  early-abandon check used by Algorithm 1;
* the mask-based binary-tree popcount vs Python's built-in ``int.bit_count``;
* naive vs grid-accelerated DBSCAN neighbour search;
* pruning power of the four range-search schemes (how many candidates reach
  the exact-distance refinement).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.clustering.dbscan import dbscan
from repro.core.bitvector import BitVector, popcount_tree
from repro.core.crowd_discovery import discover_closed_crowds
from repro.core.range_search import make_range_search
from repro.geometry.hausdorff import hausdorff, hausdorff_naive, hausdorff_within
from repro.geometry.point import Point

from .conftest import BENCH_PARAMS, cluster_db_for_fleet


def _point_sets(n=60, seed=3):
    rng = np.random.default_rng(seed)
    a = [Point(float(x), float(y)) for x, y in rng.uniform(0, 1000, (n, 2))]
    b = [Point(float(x) + 150.0, float(y)) for x, y in rng.uniform(0, 1000, (n, 2))]
    return a, b


class TestHausdorffAblation:
    def test_naive_double_loop(self, benchmark):
        a, b = _point_sets()
        benchmark(hausdorff_naive, a, b)

    def test_vectorised_exact(self, benchmark):
        a, b = _point_sets()
        benchmark(hausdorff, a, b)

    def test_thresholded_early_abandon(self, benchmark):
        a, b = _point_sets()
        benchmark(hausdorff_within, a, b, 300.0)


class TestPopcountAblation:
    WIDTH = 256

    def _vectors(self, count=200, seed=5):
        rng = np.random.default_rng(seed)
        return [
            int.from_bytes(rng.bytes(self.WIDTH // 8), "little") for _ in range(count)
        ]

    def test_mask_based_popcount(self, benchmark):
        values = self._vectors()

        def run():
            return sum(popcount_tree(v, self.WIDTH) for v in values)

        benchmark(run)

    def test_builtin_bit_count(self, benchmark):
        values = self._vectors()

        def run():
            return sum(v.bit_count() for v in values)

        total_mask = benchmark(run)
        assert total_mask == sum(popcount_tree(v, self.WIDTH) for v in values)


class TestDBSCANAblation:
    def _points(self, n=800, seed=9):
        rng = np.random.default_rng(seed)
        return rng.uniform(0, 5000, (n, 2))

    def test_naive_neighbour_search(self, benchmark):
        points = self._points()
        benchmark.pedantic(dbscan, args=(points, 120.0, 4), kwargs={"method": "naive"}, rounds=2, iterations=1)

    def test_grid_neighbour_search(self, benchmark):
        points = self._points()
        benchmark.pedantic(dbscan, args=(points, 120.0, 4), kwargs={"method": "grid"}, rounds=2, iterations=1)

    def test_backends_agree(self, benchmark):
        points = self._points(n=300)

        def run():
            return (
                dbscan(points, 120.0, 4, method="naive"),
                dbscan(points, 120.0, 4, method="grid"),
            )

        naive, grid = benchmark.pedantic(run, rounds=1, iterations=1)

        def partition(labels):
            groups = {}
            for idx, label in enumerate(labels):
                groups.setdefault(label, set()).add(idx)
            groups.pop(-1, None)
            return {frozenset(g) for g in groups.values()}

        assert partition(naive) == partition(grid)


class TestPruningPowerAblation:
    @pytest.mark.parametrize("strategy", ("BRUTE", "SR", "IR", "GRID"))
    def test_candidates_reaching_refinement(self, benchmark, strategy):
        cdb = cluster_db_for_fleet(200)
        searcher = make_range_search(strategy, BENCH_PARAMS.delta)

        def run():
            searcher.reset_statistics()
            discover_closed_crowds(cdb, BENCH_PARAMS, strategy=searcher)
            return searcher.refinement_count

        refinements = benchmark.pedantic(run, rounds=1, iterations=1)
        benchmark.extra_info.update({"strategy": strategy, "refinements": refinements})
