"""Phase-2 proximity-graph frontier sweep shoot-out on the metro scenario.

Clusters the metro workload once (shared by construction), then runs crowd
discovery with the prior per-timestamp batched sweep (range-search
``search_many`` per snapshot) and the proximity-graph frontier sweep (one
precomputed CSR adjacency, one gather per timestamp).  Asserts identical
crowd labels and the frontier speedup.

The hard assertion bound (2.5x) is deliberately below the typical measured
speedup (>= 3x on an idle machine, reported via ``extra_info`` / stdout) so
that a noisy shared worker cannot flake the suite; the tracked
``BENCH_<n>.json`` trajectory records the real numbers per commit.
"""

from __future__ import annotations

import os
import time

from repro.bench import SCENARIOS
from repro.core.crowd_discovery import discover_closed_crowds
from repro.core.pipeline import GatheringMiner
from repro.engine.range_search import VectorizedRangeSearch
from repro.engine.registry import ExecutionConfig
from repro.engine.sweep import sweep_crowds_batched

ROUNDS = 3
MIN_SPEEDUP = 2.5

#: The canonical ``metro`` workload of ``repro bench`` — this gate and the
#: tracked ``BENCH_<n>.json`` trajectory must measure the same scenario,
#: so both read the one definition in :data:`repro.bench.SCENARIOS`.
METRO = SCENARIOS["metro"]
PARAMS = METRO.params
NUMPY = ExecutionConfig(backend="numpy")


def _metro_cluster_db():
    database = METRO.build(quick=False)
    cluster_db = GatheringMiner(PARAMS, config=NUMPY).cluster(database)
    for cluster in cluster_db:
        cluster.members
    return cluster_db


def test_frontier_sweep_beats_batched_sweep(benchmark):
    cluster_db = _metro_cluster_db()

    best_batched = best_frontier = float("inf")
    graph_seconds = 0.0
    batched_result = frontier_result = None
    for _ in range(ROUNDS):
        # A fresh strategy per round so the batched path pays its own index
        # builds, exactly as it does inside discover_closed_crowds.
        searcher = VectorizedRangeSearch(PARAMS.delta)
        start = time.perf_counter()
        batched_result = sweep_crowds_batched(cluster_db, PARAMS, searcher)
        best_batched = min(best_batched, time.perf_counter() - start)

        start = time.perf_counter()
        frontier_result = discover_closed_crowds(
            cluster_db, PARAMS, strategy="GRID", config=NUMPY
        )
        elapsed = time.perf_counter() - start
        if elapsed < best_frontier:
            best_frontier = elapsed
            graph_seconds = frontier_result.proximity_seconds

    # Exact label parity, including order: the frontier sweep is a
    # re-ordering of the batched sweep's work, not an approximation of it.
    assert [c.keys() for c in frontier_result.closed_crowds] == [
        c.keys() for c in batched_result.closed_crowds
    ]
    assert [c.keys() for c in frontier_result.open_candidates] == [
        c.keys() for c in batched_result.open_candidates
    ]

    speedup = best_batched / best_frontier
    benchmark.extra_info.update(
        {
            "fleet": METRO.fleet_size,
            "clusters": len(cluster_db),
            "crowds": len(frontier_result.closed_crowds),
            "batched_s": round(best_batched, 3),
            "frontier_s": round(best_frontier, 3),
            "graph_build_s": round(graph_seconds, 3),
            "speedup": round(speedup, 2),
        }
    )
    print(
        f"\nphase-2 proximity graph (metro: fleet={METRO.fleet_size}, "
        f"duration={METRO.duration}): batched {best_batched:.2f}s vs frontier "
        f"{best_frontier:.2f}s (graph build {graph_seconds:.2f}s) "
        f"-> {speedup:.1f}x"
    )

    # One representative frontier run for the benchmark table.
    benchmark.pedantic(
        discover_closed_crowds,
        args=(cluster_db, PARAMS),
        kwargs={"strategy": "GRID", "config": NUMPY},
        rounds=2,
        iterations=1,
    )

    # Wall-clock gate only on dedicated machines (parity always gates).
    if not os.environ.get("CI"):
        assert speedup >= MIN_SPEEDUP, (
            f"proximity-graph frontier sweep only {speedup:.2f}x faster than "
            f"the batched per-timestamp sweep (expected >= {MIN_SPEEDUP}x, "
            f"typically >= 3x)"
        )
