"""Micro-benchmark: the ``_tree_masks`` cache in the bit-vector popcount.

``popcount_tree`` (the paper's Section III-B-2 mask-method Hamming weight)
used to rebuild its ``(shift, mask)`` ladder on every call; the ladder only
depends on the vector width, which TAD* holds fixed per crowd, so it is now
``lru_cache``-d.  This benchmark measures the win by timing the popcount
loop against the cached and the uncached (``__wrapped__``) mask builder.
"""

from __future__ import annotations

import os
import time

from repro.core.bitvector import _tree_masks, popcount_tree

WIDTH = 96
VALUES = 3000
MIN_SPEEDUP = 1.5


def _popcount_all(values, masks):
    """The popcount_tree inner loop with a pre-resolved mask ladder."""
    total = 0
    for value in values:
        x = value
        for shift, mask in masks:
            x = (x & mask) + ((x >> shift) & mask)
        total += x
    return total


def test_tree_mask_cache_speeds_up_popcount(benchmark):
    values = [(0x9E3779B97F4A7C15 * (i + 1)) & ((1 << WIDTH) - 1) for i in range(VALUES)]
    reference = [value.bit_count() for value in values]

    # Correctness first: the cached ladder computes true Hamming weights.
    assert [popcount_tree(value, WIDTH) for value in values] == reference

    start = time.perf_counter()
    cached_total = _popcount_all(values, _tree_masks(WIDTH))
    cached_seconds = time.perf_counter() - start

    start = time.perf_counter()
    uncached_total = 0
    for value in values:
        # What every popcount_tree call paid before the cache: rebuild the
        # mask ladder from scratch.
        uncached_total += _popcount_all([value], _tree_masks.__wrapped__(WIDTH))
    uncached_seconds = time.perf_counter() - start

    assert cached_total == uncached_total == sum(reference)
    speedup = uncached_seconds / cached_seconds
    benchmark.extra_info.update(
        {
            "width": WIDTH,
            "values": VALUES,
            "cached_s": round(cached_seconds, 4),
            "uncached_s": round(uncached_seconds, 4),
            "speedup": round(speedup, 1),
        }
    )
    print(
        f"\n_tree_masks cache (width={WIDTH}, n={VALUES}): "
        f"uncached {uncached_seconds * 1e3:.1f}ms vs cached {cached_seconds * 1e3:.1f}ms "
        f"-> {speedup:.1f}x"
    )
    benchmark.pedantic(
        _popcount_all, args=(values, _tree_masks(WIDTH)), rounds=3, iterations=1
    )
    if not os.environ.get("CI"):
        assert speedup >= MIN_SPEEDUP, (
            f"cached mask ladder only {speedup:.2f}x faster (expected >= {MIN_SPEEDUP}x)"
        )
