"""Figure 7 — runtime of closed-gathering detection (brute force vs TAD vs TAD*).

The paper runs the three detectors on 1000 randomly chosen closed crowds and
sweeps

* Figure 7a — the gathering support threshold ``m_p``,
* Figure 7b — the participator lifetime threshold ``k_p``,
* Figure 7c — the crowd length ``Cr.tau``.

Expected shape: TAD beats brute force by one to two orders of magnitude and
TAD* improves on TAD (about 30 % in the paper); brute force degrades sharply
(near-exponentially in the paper's range) with the crowd length, while
TAD/TAD* grow smoothly.  This harness uses a smaller pool of synthetic crowds
(``CROWD_POOL`` per setting) so the whole figure regenerates in seconds.
"""

from __future__ import annotations

import pytest

from repro.core.gathering import (
    detect_gatherings_brute_force,
    detect_gatherings_tad,
    detect_gatherings_tad_star,
)
from repro.datagen.synthetic import synthetic_crowd

from .conftest import BENCH_PARAMS

METHODS = {
    "brute-force": detect_gatherings_brute_force,
    "TAD": detect_gatherings_tad,
    "TAD*": detect_gatherings_tad_star,
}

CROWD_POOL = 12
DEFAULT_LENGTH = 30
DEFAULT_COMMITTED = 12
DEFAULT_CASUAL = 10

MP_VALUES = (3, 5, 7, 9, 11)
KP_VALUES = (6, 8, 10, 12, 14)
LENGTH_VALUES = (15, 25, 35, 45, 55)


def crowd_pool(length=DEFAULT_LENGTH, count=CROWD_POOL):
    """A reproducible pool of closed-crowd-like inputs."""
    return [
        synthetic_crowd(
            length=length,
            committed=DEFAULT_COMMITTED,
            casual=DEFAULT_CASUAL,
            presence_probability=0.8,
            casual_presence=0.3,
            seed=1000 + i,
        )
        for i in range(count)
    ]


def detect_all(method, crowds, params):
    total = 0
    for crowd in crowds:
        total += len(method(crowd, params))
    return total


@pytest.mark.parametrize("method_name", METHODS)
@pytest.mark.parametrize("mp", MP_VALUES)
def test_fig7a_mp(benchmark, method_name, mp):
    crowds = crowd_pool()
    params = BENCH_PARAMS.with_overrides(mp=mp, kp=8, kc=8)
    found = benchmark.pedantic(
        detect_all, args=(METHODS[method_name], crowds, params), rounds=1, iterations=1
    )
    benchmark.extra_info.update(
        {"figure": "7a", "mp": mp, "method": method_name, "gatherings": found}
    )


@pytest.mark.parametrize("method_name", METHODS)
@pytest.mark.parametrize("kp", KP_VALUES)
def test_fig7b_kp(benchmark, method_name, kp):
    crowds = crowd_pool()
    params = BENCH_PARAMS.with_overrides(kp=kp, mp=6, kc=8)
    found = benchmark.pedantic(
        detect_all, args=(METHODS[method_name], crowds, params), rounds=1, iterations=1
    )
    benchmark.extra_info.update(
        {"figure": "7b", "kp": kp, "method": method_name, "gatherings": found}
    )


@pytest.mark.parametrize("method_name", METHODS)
@pytest.mark.parametrize("length", LENGTH_VALUES)
def test_fig7c_crowd_length(benchmark, method_name, length):
    crowds = crowd_pool(length=length)
    params = BENCH_PARAMS.with_overrides(kp=8, mp=6, kc=8)
    found = benchmark.pedantic(
        detect_all, args=(METHODS[method_name], crowds, params), rounds=1, iterations=1
    )
    benchmark.extra_info.update(
        {"figure": "7c", "length": length, "method": method_name, "gatherings": found}
    )


def test_fig7_methods_agree(benchmark):
    """The three detectors report the same closed gatherings."""
    crowds = crowd_pool()
    params = BENCH_PARAMS.with_overrides(kp=8, mp=6, kc=8)

    def run():
        results = {}
        for name, method in METHODS.items():
            results[name] = [
                sorted(g.keys() for g in method(crowd, params)) for crowd in crowds
            ]
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    assert results["brute-force"] == results["TAD"] == results["TAD*"]
