"""Backend shoot-out: columnar NumPy engine vs the scalar Python reference.

Runs phase 1 (snapshot clustering) and phase 2 (closed-crowd discovery with
the GRID scheme) on the standard efficiency-study fleet with both execution
backends, asserts identical mining output, and checks the vectorized
backend's combined speedup.  Snapshot extraction (trajectory interpolation)
is hoisted out of the timed region because it is byte-for-byte shared by
both backends.

The assertion bound (2x) is deliberately below the typical measured speedup
(>= 3x on an idle machine, reported via ``extra_info`` / stdout) so that a
noisy CI worker cannot flake the suite.
"""

from __future__ import annotations

import os
import time

from repro.clustering.snapshot import ClusterDatabase, cluster_snapshot
from repro.core.crowd_discovery import discover_closed_crowds
from repro.engine.registry import ExecutionConfig

from .conftest import BENCH_PARAMS

FLEET_SIZE = 600
DURATION = 60
ROUNDS = 3
MIN_SPEEDUP = 2.0


def _snapshots():
    from repro.datagen.scenarios import efficiency_scenario

    database = efficiency_scenario(
        fleet_size=FLEET_SIZE, duration=DURATION, gatherings=3, seed=43
    ).database
    return {t: database.snapshot(t) for t in database.timestamps(step=1.0)}


def _run_backend(snapshots, backend: str):
    dbscan_method = "numpy" if backend == "numpy" else "grid"
    config = ExecutionConfig(backend=backend) if backend == "numpy" else None

    best_phase1 = best_phase2 = float("inf")
    cluster_db = result = None
    for _ in range(ROUNDS):
        start = time.perf_counter()
        cluster_db = ClusterDatabase()
        for t, positions in snapshots.items():
            cluster_db.add_snapshot(
                t,
                cluster_snapshot(
                    positions,
                    timestamp=t,
                    eps=BENCH_PARAMS.eps,
                    min_points=BENCH_PARAMS.min_points,
                    method=dbscan_method,
                ),
            )
        best_phase1 = min(best_phase1, time.perf_counter() - start)

        start = time.perf_counter()
        result = discover_closed_crowds(
            cluster_db, BENCH_PARAMS, strategy="GRID", config=config
        )
        best_phase2 = min(best_phase2, time.perf_counter() - start)
    return cluster_db, result, best_phase1, best_phase2


def test_numpy_backend_beats_python_reference(benchmark):
    snapshots = _snapshots()

    py_db, py_result, py_p1, py_p2 = _run_backend(snapshots, "python")
    np_db, np_result, np_p1, np_p2 = _run_backend(snapshots, "numpy")

    # Identical mining output across backends (parity).
    assert [c.key() for c in np_db] == [c.key() for c in py_db]
    assert [c.object_ids() for c in np_db] == [c.object_ids() for c in py_db]
    assert sorted(c.keys() for c in np_result.closed_crowds) == sorted(
        c.keys() for c in py_result.closed_crowds
    )

    python_total = py_p1 + py_p2
    numpy_total = np_p1 + np_p2
    speedup = python_total / numpy_total

    benchmark.extra_info.update(
        {
            "fleet": FLEET_SIZE,
            "python_phase1_s": round(py_p1, 3),
            "python_phase2_s": round(py_p2, 3),
            "numpy_phase1_s": round(np_p1, 3),
            "numpy_phase2_s": round(np_p2, 3),
            "speedup": round(speedup, 2),
        }
    )
    print(
        f"\nbackend shoot-out (fleet={FLEET_SIZE}, duration={DURATION}): "
        f"python {python_total:.2f}s (p1 {py_p1:.2f} + p2 {py_p2:.2f}) vs "
        f"numpy {numpy_total:.2f}s (p1 {np_p1:.2f} + p2 {np_p2:.2f}) "
        f"-> {speedup:.1f}x"
    )

    # Time one representative numpy phase-2 run for the benchmark table.
    benchmark.pedantic(
        discover_closed_crowds,
        args=(np_db, BENCH_PARAMS),
        kwargs={"strategy": "GRID", "config": ExecutionConfig(backend="numpy")},
        rounds=2,
        iterations=1,
    )

    # Shared CI runners (GitHub sets CI=1) have noisy neighbours; the parity
    # assertions above still gate there, but the wall-clock bound only gates
    # on dedicated machines so one timing blip cannot red-flag a build.
    if not os.environ.get("CI"):
        assert speedup >= MIN_SPEEDUP, (
            f"vectorized backend only {speedup:.2f}x faster than the python "
            f"reference (expected >= {MIN_SPEEDUP}x, typically >= 3x)"
        )
