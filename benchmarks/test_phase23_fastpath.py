"""Phase-2/3 fast-path shoot-out on the multi-district city scenario.

Clusters the city workload once (phase 1 is shared by construction), then
runs crowd discovery (Algorithm 1) and gathering detection (TAD*) with both
execution backends: the scalar reference and the vectorized fast path
(batched arena sweep + packed-bit TAD*).  Asserts identical mining output
and the combined phase-2+3 speedup.

The hard assertion bound (2.5x) is deliberately below the typical measured
speedup (>= 3x on an idle machine, reported via ``extra_info`` / stdout) so
that a noisy shared worker cannot flake the suite; the tracked
``BENCH_<n>.json`` trajectory records the real numbers per commit.
"""

from __future__ import annotations

import os
import time

from repro.bench import SCENARIOS
from repro.core.crowd_discovery import discover_closed_crowds
from repro.core.gathering import dedupe_gatherings
from repro.core.pipeline import GatheringMiner
from repro.engine.registry import REGISTRY, ExecutionConfig

ROUNDS = 3
MIN_SPEEDUP = 2.5

#: The canonical ``city`` workload of ``repro bench`` — this gate and the
#: tracked ``BENCH_<n>.json`` trajectory must measure the same scenario,
#: so both read the one definition in :data:`repro.bench.SCENARIOS`.
CITY = SCENARIOS["city"]
PARAMS = CITY.params


def _city_cluster_db():
    database = CITY.build(quick=False)
    return GatheringMiner(PARAMS, config=ExecutionConfig(backend="numpy")).cluster(
        database
    )


def _run_phases(cluster_db, backend: str):
    """Best-of-rounds phase-2 and phase-3 timings of one backend."""
    config = ExecutionConfig(backend=backend) if backend == "numpy" else None
    detector = REGISTRY.create(
        "detection", "TAD*", backend=backend, config=config
    )
    best_phase2 = best_phase3 = float("inf")
    crowd_result = gatherings = None
    for _ in range(ROUNDS):
        start = time.perf_counter()
        crowd_result = discover_closed_crowds(
            cluster_db, PARAMS, strategy="GRID", config=config
        )
        best_phase2 = min(best_phase2, time.perf_counter() - start)

        start = time.perf_counter()
        gatherings = dedupe_gatherings(
            [
                gathering
                for crowd in crowd_result.closed_crowds
                for gathering in detector(crowd, PARAMS)
            ]
        )
        best_phase3 = min(best_phase3, time.perf_counter() - start)
    return crowd_result, gatherings, best_phase2, best_phase3


def test_numpy_phase23_beats_python_reference(benchmark):
    cluster_db = _city_cluster_db()

    py_crowds, py_gatherings, py_p2, py_p3 = _run_phases(cluster_db, "python")
    np_crowds, np_gatherings, np_p2, np_p3 = _run_phases(cluster_db, "numpy")

    # Exact label parity: closed crowds (including order), open candidates,
    # and gatherings with their participator sets.
    assert [c.keys() for c in np_crowds.closed_crowds] == [
        c.keys() for c in py_crowds.closed_crowds
    ]
    assert [c.keys() for c in np_crowds.open_candidates] == [
        c.keys() for c in py_crowds.open_candidates
    ]
    assert [(g.keys(), g.participator_ids) for g in np_gatherings] == [
        (g.keys(), g.participator_ids) for g in py_gatherings
    ]

    python_total = py_p2 + py_p3
    numpy_total = np_p2 + np_p3
    speedup = python_total / numpy_total

    benchmark.extra_info.update(
        {
            "fleet": CITY.fleet_size,
            "clusters": len(cluster_db),
            "crowds": len(py_crowds.closed_crowds),
            "gatherings": len(py_gatherings),
            "python_phase2_s": round(py_p2, 3),
            "python_phase3_s": round(py_p3, 3),
            "numpy_phase2_s": round(np_p2, 3),
            "numpy_phase3_s": round(np_p3, 3),
            "speedup": round(speedup, 2),
        }
    )
    print(
        f"\nphase-2/3 fast path (city: fleet={CITY.fleet_size}, duration={CITY.duration}): "
        f"python {python_total:.2f}s (p2 {py_p2:.2f} + p3 {py_p3:.3f}) vs "
        f"numpy {numpy_total:.2f}s (p2 {np_p2:.2f} + p3 {np_p3:.3f}) "
        f"-> {speedup:.1f}x"
    )

    # One representative numpy phase-2 run for the benchmark table.
    benchmark.pedantic(
        discover_closed_crowds,
        args=(cluster_db, PARAMS),
        kwargs={"strategy": "GRID", "config": ExecutionConfig(backend="numpy")},
        rounds=2,
        iterations=1,
    )

    # Wall-clock gate only on dedicated machines (parity always gates).
    if not os.environ.get("CI"):
        assert speedup >= MIN_SPEEDUP, (
            f"vectorized phase-2+3 path only {speedup:.2f}x faster than the "
            f"python reference (expected >= {MIN_SPEEDUP}x, typically >= 3x)"
        )
