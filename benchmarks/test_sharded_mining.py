"""Sharded batch mining: speedup vs shard count on the city workload.

Mines the multi-district ``city_scenario`` with the sharded driver at 1
and 4 shards (scalar backend, where phase-1 clustering dominates), asserts
exact crowd/gathering parity between the two, and reports per-phase
timings plus the observed speedup via ``extra_info`` / stdout.

The ISSUE's acceptance target (>= 2x at 4 shards over 1 shard) is a
*parallel* speedup: it needs cores to run on.  On boxes with fewer than 4
usable CPUs the measurement is still taken and reported, but the speedup
assertion is skipped — shard workers cannot beat serial execution without
hardware parallelism, and a 1-core CI runner must not flake the suite.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.core.pipeline import GatheringMiner
from repro.core.sharding import ShardedMiningDriver
from repro.datagen.scenarios import city_scenario

from .conftest import BENCH_PARAMS

FLEET_SIZE = 560
DURATION = 96
DISTRICTS = 4
SHARDS = 4
ROUNDS = 2
MIN_SPEEDUP = 2.0
_PARAMS = BENCH_PARAMS.with_overrides(kc=12, kp=8, mp=4)


def _best_run(driver, database):
    best = float("inf")
    result = None
    for _ in range(ROUNDS):
        start = time.perf_counter()
        result = driver.mine(database)
        best = min(best, time.perf_counter() - start)
    return result, best


def test_sharded_mining_speedup_and_parity(benchmark):
    database = city_scenario(
        fleet_size=FLEET_SIZE, duration=DURATION, districts=DISTRICTS, seed=97
    ).database

    single = ShardedMiningDriver(_PARAMS, shards=1)
    sharded = ShardedMiningDriver(_PARAMS, shards=SHARDS)
    single_result, single_best = _best_run(single, database)
    sharded_result, sharded_best = _best_run(sharded, database)

    # Exact parity: sharding must never change the answer.
    assert {c.keys() for c in sharded_result.closed_crowds} == {
        c.keys() for c in single_result.closed_crowds
    }
    assert {(g.keys(), g.participator_ids) for g in sharded_result.gatherings} == {
        (g.keys(), g.participator_ids) for g in single_result.gatherings
    }
    # And against the plain one-shot miner, for good measure.
    reference = GatheringMiner(_PARAMS).mine(database)
    assert {c.keys() for c in sharded_result.closed_crowds} == {
        c.keys() for c in reference.closed_crowds
    }

    speedup = single_best / sharded_best if sharded_best > 0 else float("inf")
    report = sharded.last_report
    benchmark.extra_info["snapshots"] = report.snapshots
    benchmark.extra_info["single_shard_seconds"] = round(single_best, 3)
    benchmark.extra_info["four_shard_seconds"] = round(sharded_best, 3)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    benchmark.extra_info["cluster_seconds"] = round(report.cluster_seconds, 3)
    benchmark.extra_info["stitch_seconds"] = round(report.stitch_seconds, 3)
    benchmark.extra_info["cpus"] = os.cpu_count()
    print(
        f"\nsharded mining ({report.snapshots} snapshots, fleet {FLEET_SIZE}): "
        f"1 shard {single_best:.2f}s, {SHARDS} shards {sharded_best:.2f}s "
        f"-> {speedup:.2f}x on {os.cpu_count()} cpus"
    )

    # One representative timed run for the pytest-benchmark table.
    benchmark.pedantic(
        lambda: ShardedMiningDriver(_PARAMS, shards=SHARDS).mine(database),
        rounds=1,
        warmup_rounds=0,
    )

    cpus = os.cpu_count() or 1
    if cpus < SHARDS:
        pytest.skip(
            f"{cpus} cpu(s) < {SHARDS} shards: parallel speedup not measurable "
            f"on this machine (measured {speedup:.2f}x; assertion needs >= {MIN_SPEEDUP}x)"
        )
    assert speedup >= MIN_SPEEDUP, (
        f"expected >= {MIN_SPEEDUP}x speedup at {SHARDS} shards, got {speedup:.2f}x"
    )
