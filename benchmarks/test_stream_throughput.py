"""Streaming service throughput: points/sec per execution backend.

Replays the standard streaming scenario's point feed through
:class:`~repro.stream.StreamingGatheringService` with each registered
backend and reports ingest throughput (``points_per_second`` in
``extra_info``).  Mining output is asserted identical across backends and
against the one-shot batch miner, and the eviction policy's memory bound is
checked: peak retained clusters must stay well below the total built.
"""

from __future__ import annotations

import pytest

from repro.core.pipeline import GatheringMiner
from repro.datagen.scenarios import arrival_stream, streaming_scenario
from repro.engine.registry import BACKENDS, ExecutionConfig
from repro.stream import ReplayDriver, StreamingGatheringService

from .conftest import BENCH_PARAMS

FLEET_SIZE = 300
DURATION = 60
WINDOW = 10
_PARAMS = BENCH_PARAMS.with_overrides(kc=10, kp=6, mp=3)


def _workload():
    """The scenario feed plus the batch reference answer (built once)."""
    scenario = streaming_scenario(fleet_size=FLEET_SIZE, duration=DURATION, seed=51)
    feed = arrival_stream(scenario.database)
    reference = GatheringMiner(_PARAMS).mine(scenario.database)
    return feed, reference


_FEED, _REFERENCE = _workload()


@pytest.mark.parametrize("backend", BACKENDS)
def test_stream_throughput(benchmark, backend):
    """Replay the feed end to end; report points/sec for this backend."""
    config = ExecutionConfig(backend=backend)
    reports = []

    def replay():
        service = StreamingGatheringService(_PARAMS, window=WINDOW, config=config)
        reports.append(ReplayDriver(service, batch_size=4096).replay(_FEED))

    benchmark.pedantic(replay, rounds=2, warmup_rounds=0)
    report = reports[-1]
    result = report.result

    assert sorted(c.keys() for c in result.closed_crowds) == sorted(
        c.keys() for c in _REFERENCE.closed_crowds
    )
    assert sorted(g.keys() for g in result.gatherings) == sorted(
        g.keys() for g in _REFERENCE.gatherings
    )
    # Lemma-4 eviction bounds live state: the frontier can reference at most
    # a couple of windows' worth of the clusters built over the whole stream.
    assert result.stats.peak_retained_clusters < result.stats.clusters_built / 2

    benchmark.extra_info["points_per_second"] = round(report.points_per_second)
    benchmark.extra_info["windows"] = result.stats.windows_closed
    benchmark.extra_info["peak_retained_clusters"] = result.stats.peak_retained_clusters
