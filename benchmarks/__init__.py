"""Benchmark harness reproducing the paper's efficiency figures.

Making this directory a package lets ``pytest`` resolve the
``from .conftest import ...`` imports in the figure benchmarks when the
suite is collected from the repository root.
"""
