"""Figure 6 — runtime of closed-crowd discovery (SR vs IR vs GRID).

The paper sweeps three parameters and reports the runtime of Algorithm 1 with
the three pruning schemes:

* Figure 6a — support threshold ``m_c`` (runtime decreases as ``m_c`` grows),
* Figure 6b — variation threshold ``delta`` (runtime increases with ``delta``),
* Figure 6c — database size |O_DB| (runtime increases with the fleet size,
  with GRID the least sensitive).

Expected shape: GRID <= IR <= SR at every setting, with GRID clearly fastest
(the paper reports about an order of magnitude between GRID and SR).  The
BRUTE scheme (no index) is benchmarked once at the default setting as an
extra reference series.
"""

from __future__ import annotations

import pytest

from repro.core.crowd_discovery import discover_closed_crowds

from .conftest import BENCH_PARAMS, cluster_db_for_fleet

STRATEGIES = ("SR", "IR", "GRID")
DEFAULT_FLEET = 240

MC_VALUES = (4, 6, 8, 10, 12)
DELTA_VALUES = (100.0, 200.0, 300.0, 400.0, 500.0)
FLEET_SIZES = (150, 200, 240, 300, 360)


@pytest.mark.parametrize("strategy", STRATEGIES)
@pytest.mark.parametrize("mc", MC_VALUES)
def test_fig6a_support_mc(benchmark, strategy, mc):
    cdb = cluster_db_for_fleet(DEFAULT_FLEET)
    params = BENCH_PARAMS.with_overrides(mc=mc)

    result = benchmark.pedantic(
        discover_closed_crowds, args=(cdb, params), kwargs={"strategy": strategy},
        rounds=2, iterations=1,
    )
    benchmark.extra_info.update(
        {"figure": "6a", "mc": mc, "strategy": strategy, "crowds": result.crowd_count()}
    )


@pytest.mark.parametrize("strategy", STRATEGIES)
@pytest.mark.parametrize("delta", DELTA_VALUES)
def test_fig6b_delta(benchmark, strategy, delta):
    cdb = cluster_db_for_fleet(DEFAULT_FLEET)
    params = BENCH_PARAMS.with_overrides(delta=delta)

    result = benchmark.pedantic(
        discover_closed_crowds, args=(cdb, params), kwargs={"strategy": strategy},
        rounds=2, iterations=1,
    )
    benchmark.extra_info.update(
        {"figure": "6b", "delta": delta, "strategy": strategy, "crowds": result.crowd_count()}
    )


@pytest.mark.parametrize("strategy", STRATEGIES)
@pytest.mark.parametrize("fleet_size", FLEET_SIZES)
def test_fig6c_database_size(benchmark, strategy, fleet_size):
    cdb = cluster_db_for_fleet(fleet_size)

    result = benchmark.pedantic(
        discover_closed_crowds, args=(cdb, BENCH_PARAMS), kwargs={"strategy": strategy},
        rounds=2, iterations=1,
    )
    benchmark.extra_info.update(
        {
            "figure": "6c",
            "fleet_size": fleet_size,
            "strategy": strategy,
            "crowds": result.crowd_count(),
        }
    )


def test_fig6_brute_force_reference(benchmark):
    """The un-indexed baseline at the default setting (extra series)."""
    cdb = cluster_db_for_fleet(DEFAULT_FLEET)
    result = benchmark.pedantic(
        discover_closed_crowds, args=(cdb, BENCH_PARAMS), kwargs={"strategy": "BRUTE"},
        rounds=2, iterations=1,
    )
    benchmark.extra_info.update({"figure": "6", "strategy": "BRUTE", "crowds": result.crowd_count()})


def test_fig6_strategies_agree_on_results(benchmark):
    """Sanity check folded into the harness: all schemes find the same crowds."""
    cdb = cluster_db_for_fleet(DEFAULT_FLEET)

    def run():
        keys = {}
        for strategy in STRATEGIES:
            result = discover_closed_crowds(cdb, BENCH_PARAMS, strategy=strategy)
            keys[strategy] = sorted(crowd.keys() for crowd in result.closed_crowds)
        return keys

    keys = benchmark.pedantic(run, rounds=1, iterations=1)
    assert keys["SR"] == keys["IR"] == keys["GRID"]
